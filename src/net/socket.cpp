#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mpcmst::service::net {

namespace {

[[noreturn]] void throw_errno(ServiceStatus status, const std::string& what) {
  throw ServiceError(status, what + ": " + std::strerror(errno));
}

bool deadline_errno() { return errno == EAGAIN || errno == EWOULDBLOCK; }

/// AF_UNIX address from a path (rejects paths longer than sun_path).
sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw ServiceError(ServiceStatus::kInvalidRequest,
                       "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.host = spec.substr(5);
    if (ep.host.empty())
      throw ServiceError(ServiceStatus::kInvalidRequest,
                         "empty unix socket path in endpoint '" + spec + "'");
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    throw ServiceError(
        ServiceStatus::kInvalidRequest,
        "endpoint '" + spec + "' is neither host:port nor unix:/path");
  ep.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port.c_str(), &end, 10);
  // Port 0 is legal for binds (the kernel picks an ephemeral port and
  // endpoint() reports it); dialing it just fails at connect().
  if (end == port.c_str() || *end != '\0' || p < 0 || p > 65535)
    throw ServiceError(ServiceStatus::kInvalidRequest,
                       "bad port in endpoint '" + spec + "'");
  ep.port = static_cast<std::uint16_t>(p);
  return ep;
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_io_timeout(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void Socket::send_all(const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  while (n > 0) {
    const ssize_t w = ::send(fd_, b, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (deadline_errno())
        throw ServiceError(ServiceStatus::kTimeout, "send deadline exceeded");
      throw_errno(ServiceStatus::kWireError, "send failed");
    }
    b += w;
    n -= static_cast<std::size_t>(w);
  }
}

void Socket::recv_all(void* p, std::size_t n) {
  auto* b = static_cast<unsigned char*>(p);
  while (n > 0) {
    const ssize_t r = ::recv(fd_, b, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (deadline_errno())
        throw ServiceError(ServiceStatus::kTimeout, "recv deadline exceeded");
      throw_errno(ServiceStatus::kWireError, "recv failed");
    }
    if (r == 0)
      throw ServiceError(ServiceStatus::kWireError,
                         "peer closed the connection mid-message");
    b += r;
    n -= static_cast<std::size_t>(r);
  }
}

Socket dial(const std::string& spec, const NetOptions& opts) {
  const Endpoint ep = parse_endpoint(spec);
  int fd = -1;
  if (ep.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno(ServiceStatus::kWireError, "socket(AF_UNIX)");
    const sockaddr_un addr = unix_addr(ep.host);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      const int e = errno;
      ::close(fd);
      errno = e;
      throw_errno(ServiceStatus::kWireError, "connect to " + spec);
    }
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res) != 0 ||
        res == nullptr)
      throw ServiceError(ServiceStatus::kWireError,
                         "cannot resolve endpoint " + spec);
    fd = ::socket(res->ai_family, SOCK_STREAM, res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      throw_errno(ServiceStatus::kWireError, "socket()");
    }
    // Non-blocking connect bounded by connect_timeout_ms.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, opts.connect_timeout_ms);
      if (rc == 0) {
        ::close(fd);
        throw ServiceError(ServiceStatus::kTimeout,
                           "connect to " + spec + " timed out");
      }
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (rc < 0 || err != 0) {
        ::close(fd);
        errno = err != 0 ? err : errno;
        throw_errno(ServiceStatus::kWireError, "connect to " + spec);
      }
    } else if (rc != 0) {
      const int e = errno;
      ::close(fd);
      errno = e;
      throw_errno(ServiceStatus::kWireError, "connect to " + spec);
    }
    ::fcntl(fd, F_SETFL, flags);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  Socket s(fd);
  s.set_io_timeout(opts.io_timeout_ms);
  return s;
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      endpoint_(std::move(other.endpoint_)),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Listener Listener::bind(const std::string& spec) {
  const Endpoint ep = parse_endpoint(spec);
  Listener l;
  if (ep.is_unix) {
    l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (l.fd_ < 0) throw_errno(ServiceStatus::kWireError, "socket(AF_UNIX)");
    ::unlink(ep.host.c_str());  // a previous run's stale socket file
    const sockaddr_un addr = unix_addr(ep.host);
    if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0)
      throw_errno(ServiceStatus::kWireError, "bind " + spec);
    l.unix_path_ = ep.host;
    l.endpoint_ = spec;
  } else {
    l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (l.fd_ < 0) throw_errno(ServiceStatus::kWireError, "socket()");
    const int one = 1;
    ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0)
      throw_errno(ServiceStatus::kWireError, "bind " + spec);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof host);
    l.endpoint_ = std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(l.fd_, 64) != 0)
    throw_errno(ServiceStatus::kWireError, "listen " + spec);
  return l;
}

Socket Listener::accept(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire) && fd_ >= 0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if (rc == 0) continue;
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Socket(cfd);
  }
  return Socket();
}

}  // namespace mpcmst::service::net
