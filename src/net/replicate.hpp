// Journal shipping: a leader streams its committed v2 journal frames to
// replicas that replay them through the ordinary update path.
//
// ReplicationHub is the leader side: installed as the backend's
// CommitListener (so it observes exactly the durable, generation-ordered
// records) and as the ServiceServer's SubscribeHandler.  A subscribing
// replica announces the last generation it applied; the hub catches it up
// from the persistence directory — the newest snapshot FILE verbatim when
// the journal can no longer bridge the gap (checkpoints truncate it),
// otherwise just the missing journal records — and then keeps it live by
// broadcasting every subsequently committed batch.
//
// ReplicaNode is the follower side: one background thread that subscribes,
// installs the shipped snapshot (parse_snapshot_bytes — the same validation
// recovery applies to disk bytes), replays each journal record through
// replay_journal_record (generation contiguity checked here, the
// fingerprint chain and classification checked inside, exactly like
// recover()), and republishes a fresh QueryService after every install.  A
// generation gap or a dropped leader connection is not fatal: the node
// reconnects with its last applied generation and resumes without the
// whole log being re-shipped, serving reads at the last contiguous
// generation the entire time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"

namespace mpcmst::service::net {

/// Leader-side fan-out of committed journal records (thread-safe).
class ReplicationHub {
 public:
  /// `persist_dir` must be the leader's PersistenceConfig::dir — subscribe
  /// catch-up reads the snapshot files and journal living there.
  explicit ReplicationHub(std::string persist_dir);
  ~ReplicationHub();

  /// The CommitListener tap: broadcast one durable batch to every
  /// subscriber (dead connections are dropped).  Called inside the
  /// backend's writer section — sends are bounded by the subscriber
  /// socket's io timeout.
  void publish(const std::vector<JournalRecord>& recs);

  /// The SubscribeHandler: catch the replica up from disk, register it for
  /// live frames.  Takes ownership of the socket; on any transport fault
  /// the connection is simply dropped (the replica re-dials).
  void subscribe(Socket s, std::uint64_t last_gen, bool have_state);

  std::size_t subscriber_count() const;
  void close_all();

 private:
  const std::string dir_;
  mutable std::mutex mu_;
  std::vector<Socket> subs_;
};

/// Follower: subscribes to a leader, maintains a replayed live backend, and
/// hands out the QueryService over it (null until the first snapshot
/// installs).  start()/stop() bound the background thread.
class ReplicaNode {
 public:
  ReplicaNode(std::string leader_endpoint, NetOptions opts = {},
              ServiceOptions svc_opts = {});
  ~ReplicaNode();

  void start();
  void stop();

  /// The current serving view; swapped atomically when a snapshot installs.
  /// Null until the replica holds any state.
  std::shared_ptr<QueryService> service() const;

  std::uint64_t applied_generation() const {
    return applied_.load(std::memory_order_acquire);
  }
  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }

 private:
  void run();
  void install_snapshot(const Frame& f);
  /// Apply one kJournal frame; false = generation gap (resubscribe from
  /// applied_generation(), without dropping the serving state).
  bool apply_journal(const Frame& f);

  const std::string leader_;
  const NetOptions opts_;
  const ServiceOptions svc_opts_;
  mutable std::mutex mu_;
  std::shared_ptr<QueryService> svc_;
  std::shared_ptr<UpdatableBackend> backend_;
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<bool> have_state_{false};
  std::atomic<bool> connected_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace mpcmst::service::net
