// Server half of the networked shard tier.
//
// ShardHost is the state one shard-server process holds: the tier meta, one
// IndexShard slice, full parent/weight mirrors of the tree (so kCertify can
// answer global path questions locally), and the TreeTopology view built
// from them.  Its RPC evaluators are the per-shard halves of the router's
// merges (router.cpp): kAnswerRun resolves only in the local endpoint map
// (the client runs the two-probe protocol), kTopK returns the first
// min(k, |order|) fragility entries, kCertify certifies the local roster
// against a resolved batch.  kPatch applies one committed update through
// the SAME shard patch primitives scatter() uses (shard.hpp), so a slice
// behind a socket and a slice in-process stay byte-identical.
//
// ShardServer wraps a ShardHost behind a Listener: thread-per-connection,
// reads guarded by a shared mutex against kBootstrap/kPatch writers.
// ServiceServer serves a whole QueryService (leader or replica) behind one
// endpoint: kQuery/kStats always, kIngest when a mutation handler is
// installed (else kNotLeader), kSubscribe handed to the replication hub.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"

namespace mpcmst::service::net {

/// One shard server's resident state + RPC evaluators.  Not internally
/// synchronized — ShardServer's shared_mutex is the guard.
class ShardHost {
 public:
  explicit ShardHost(ShardHostState st);

  const WireMeta& meta() const { return meta_; }
  const IndexShard& shard() const { return shard_; }

  /// min(v / stride, num_shards - 1): the client-side partition arithmetic,
  /// mirrored here to derive patch-entry ownership.
  std::size_t shard_of(Vertex v) const;

  // RPC evaluators: decode the request body from `req`, write the reply
  // body into `rep` and return the reply type (kError bodies are written on
  // malformed requests).
  MsgType answer_run(ByteReader& req, ByteWriter& rep) const;
  MsgType top_k(ByteReader& req, ByteWriter& rep) const;
  MsgType certify(ByteReader& req, ByteWriter& rep) const;
  MsgType find_run(ByteReader& req, ByteWriter& rep) const;
  MsgType nontree_info(ByteReader& req, ByteWriter& rep) const;

  /// Apply one committed update's repairs (same primitives as scatter()).
  void apply_patch(const WirePatch& p);

 private:
  WireStamp stamp() const {
    return WireStamp{meta_.generation, meta_.fingerprint};
  }

  WireMeta meta_;
  IndexShard shard_;
  std::vector<Vertex> parent_;  // full tree mirror (structure)
  std::vector<Weight> tree_w_;  // full tree mirror (weights)
  verify::TreeTopology topo_;
};

/// Split a sharded index into per-shard bootstrap payloads (the leader's
/// side of kBootstrap; also what a static deployment loads from disk).
std::vector<ShardHostState> make_host_states(
    const ShardedSensitivityIndex& idx, const CostReceipt& receipt);

/// One shard server process: accept loop + thread-per-connection over an
/// optional ShardHost (kUnavailable until bootstrapped or installed).
class ShardServer {
 public:
  ShardServer(Listener listener, NetOptions opts = {});
  ~ShardServer();

  /// Preload a slice (static deployments); kBootstrap replaces it.
  void install(ShardHostState st);

  void start();
  void stop();
  /// Blocks until a kShutdown frame stops the server (process mode).
  void wait();

  const std::string& endpoint() const { return listener_.endpoint(); }

 private:
  void accept_loop();
  void serve_conn(Socket s);
  /// One request/reply exchange; returns false when the connection (or the
  /// whole server, via kShutdown) should wind down.
  bool handle_frame(Socket& s, const Frame& f);

  Listener listener_;
  NetOptions opts_;
  mutable std::shared_mutex mu_;  // host_ swap/patch vs. readers
  std::unique_ptr<ShardHost> host_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;
};

/// A whole QueryService behind one endpoint (leader or replica front door).
class ServiceServer {
 public:
  /// `provider` is re-invoked per request so a replica can swap in a fresh
  /// service after each snapshot install; returning null serves
  /// kUnavailable.
  using ServiceProvider = std::function<std::shared_ptr<QueryService>()>;
  using IngestHandler = std::function<std::vector<UpdateReceipt>(
      const std::vector<EdgeEvent>&)>;
  /// Takes ownership of the connection after a kSubscribe (replication hub).
  using SubscribeHandler =
      std::function<void(Socket, std::uint64_t last_gen, bool have_state)>;

  ServiceServer(Listener listener, ServiceProvider provider,
                NetOptions opts = {});
  ~ServiceServer();

  void set_ingest_handler(IngestHandler h) { ingest_ = std::move(h); }
  void set_subscribe_handler(SubscribeHandler h) { subscribe_ = std::move(h); }

  void start();
  void stop();
  void wait();

  const std::string& endpoint() const { return listener_.endpoint(); }

 private:
  void accept_loop();
  void serve_conn(Socket s);
  bool handle_frame(Socket& s, const Frame& f, bool& handed_off);

  Listener listener_;
  NetOptions opts_;
  ServiceProvider provider_;
  IngestHandler ingest_;          // null: kNotLeader
  SubscribeHandler subscribe_;    // null: kNotLeader
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;
};

}  // namespace mpcmst::service::net
