#include "net/wire.hpp"

#include <mutex>
#include <unordered_map>

#include "common/check.hpp"
#include "net/socket.hpp"
#include "service/snapshot.hpp"

namespace mpcmst::service::net {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kError: return "error";
    case MsgType::kOk: return "ok";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kMeta: return "meta";
    case MsgType::kMetaReply: return "meta_reply";
    case MsgType::kAnswerRun: return "answer_run";
    case MsgType::kAnswerRunReply: return "answer_run_reply";
    case MsgType::kTopK: return "top_k";
    case MsgType::kTopKReply: return "top_k_reply";
    case MsgType::kCertify: return "certify";
    case MsgType::kCertifyReply: return "certify_reply";
    case MsgType::kFindRun: return "find_run";
    case MsgType::kFindRunReply: return "find_run_reply";
    case MsgType::kNontreeInfo: return "nontree_info";
    case MsgType::kNontreeInfoReply: return "nontree_info_reply";
    case MsgType::kBootstrap: return "bootstrap";
    case MsgType::kPatch: return "patch";
    case MsgType::kQuery: return "query";
    case MsgType::kQueryReply: return "query_reply";
    case MsgType::kIngest: return "ingest";
    case MsgType::kIngestReply: return "ingest_reply";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsReply: return "stats_reply";
    case MsgType::kSubscribe: return "subscribe";
    case MsgType::kSnapshot: return "snapshot";
    case MsgType::kJournal: return "journal";
    case MsgType::kShutdown: return "shutdown";
  }
  return "unknown";
}

// --- framing --------------------------------------------------------------

std::vector<unsigned char> pack_frame(MsgType t, const unsigned char* body,
                                      std::size_t n) {
  ByteWriter w;
  const std::uint32_t len = static_cast<std::uint32_t>(n) + 6;  // ver+type+crc
  w.u32(len);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(t));
  if (n > 0) w.bytes(body, n);
  // CRC over version + type + body (everything after len, before the crc).
  w.u32(crc32(w.data().data() + 4, w.size() - 4));
  return w.data();
}

ServiceStatus parse_frame(const unsigned char* data, std::size_t size,
                          Frame& out, std::size_t* consumed) {
  if (size < kFrameOverhead) return ServiceStatus::kWireError;
  ByteReader hdr(data, 4);
  const std::uint32_t len = hdr.u32();
  if (len < 6 || len > kMaxFrameBytes) return ServiceStatus::kWireError;
  if (size < 4 + static_cast<std::size_t>(len))
    return ServiceStatus::kWireError;
  const unsigned char* p = data + 4;  // version..crc
  ByteReader tail(p + len - 4, 4);
  const std::uint32_t want = tail.u32();
  if (crc32(p, len - 4) != want) return ServiceStatus::kWireError;
  // CRC validated: the bytes are authentic, so a foreign version byte means
  // a genuine protocol mismatch, not corruption.
  if (p[0] != kWireVersion) return ServiceStatus::kVersionMismatch;
  out.type = static_cast<MsgType>(p[1]);
  out.body.assign(p + 2, p + len - 4);
  if (consumed != nullptr) *consumed = 4 + static_cast<std::size_t>(len);
  return ServiceStatus::kOk;
}

std::size_t send_frame(Socket& s, MsgType t, const ByteWriter& body) {
  const std::vector<unsigned char> frame =
      pack_frame(t, body.data().data(), body.size());
  s.send_all(frame.data(), frame.size());
  return frame.size();
}

Frame recv_frame(Socket& s, std::size_t* bytes_read) {
  unsigned char len_bytes[4];
  s.recv_all(len_bytes, 4);
  ByteReader hdr(len_bytes, 4);
  const std::uint32_t len = hdr.u32();
  if (len < 6 || len > kMaxFrameBytes)
    throw ServiceError(ServiceStatus::kWireError,
                       "frame length " + std::to_string(len) +
                           " outside the protocol bounds");
  std::vector<unsigned char> buf(4 + static_cast<std::size_t>(len));
  std::memcpy(buf.data(), len_bytes, 4);
  s.recv_all(buf.data() + 4, len);
  Frame f;
  const ServiceStatus st = parse_frame(buf.data(), buf.size(), f);
  if (st != ServiceStatus::kOk)
    throw ServiceError(st, st == ServiceStatus::kVersionMismatch
                               ? "peer speaks a different wire version"
                               : "received a corrupt frame");
  if (bytes_read != nullptr) *bytes_read = buf.size();
  return f;
}

// --- payload codecs -------------------------------------------------------

namespace {

void encode_string(ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.bytes(s.data(), s.size());
}

bool decode_string(ByteReader& r, std::string& s) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining()) return false;
  s.resize(n);
  if (n > 0) r.bytes(s.data(), n);
  return r.ok();
}

void encode_edge_ref(ByteWriter& w, const EdgeRef& e) {
  w.u8(e.is_tree ? 1 : 0);
  w.i64(e.id);
}

bool decode_edge_ref(ByteReader& r, EdgeRef& e) {
  e.is_tree = r.u8() != 0;
  e.id = r.i64();
  return r.ok();
}

}  // namespace

void encode_stamp(ByteWriter& w, const WireStamp& s) {
  w.u64(s.generation);
  w.u64(s.fingerprint);
}

bool decode_stamp(ByteReader& r, WireStamp& s) {
  s.generation = r.u64();
  s.fingerprint = r.u64();
  return r.ok();
}

void encode_error(ByteWriter& w, ServiceStatus status,
                  const std::string& msg) {
  w.u8(static_cast<std::uint8_t>(status));
  encode_string(w, msg);
}

bool decode_error(ByteReader& r, ServiceStatus& status, std::string& msg) {
  status = static_cast<ServiceStatus>(r.u8());
  return decode_string(r, msg);
}

void encode_query(ByteWriter& w, const Query& q) {
  w.u8(static_cast<std::uint8_t>(q.kind));
  w.i64(q.u);
  w.i64(q.v);
  w.i64(q.delta);
  w.i64(q.k);
  w.vec(q.changes);
}

bool decode_query(ByteReader& r, Query& q) {
  q.kind = static_cast<QueryKind>(r.u8());
  q.u = r.i64();
  q.v = r.i64();
  q.delta = r.i64();
  q.k = r.i64();
  q.changes = r.vec<PriceChange>();
  return r.ok() && static_cast<std::uint8_t>(q.kind) <=
                       static_cast<std::uint8_t>(QueryKind::kStillMst);
}

void encode_answer(ByteWriter& w, const Answer& a) {
  w.u8(static_cast<std::uint8_t>(a.status));
  encode_edge_ref(w, a.edge);
  w.u8(a.still_optimal ? 1 : 0);
  w.i64(a.headroom);
  w.i64(a.swap_cost);
  w.i64(a.replacement);
  w.vec(a.fragile);
  w.vec(a.certificates);
}

bool decode_answer(ByteReader& r, Answer& a) {
  a.status = static_cast<Status>(r.u8());
  if (!decode_edge_ref(r, a.edge)) return false;
  a.still_optimal = r.u8() != 0;
  a.headroom = r.i64();
  a.swap_cost = r.i64();
  a.replacement = r.i64();
  a.fragile = r.vec<FragileEntry>();
  a.certificates = r.vec<verify::ViolationCert>();
  return r.ok();
}

void encode_edge_event(ByteWriter& w, const EdgeEvent& ev) {
  w.u8(static_cast<std::uint8_t>(ev.op));
  w.i64(ev.u);
  w.i64(ev.v);
  w.i64(ev.w);
}

bool decode_edge_event(ByteReader& r, EdgeEvent& ev) {
  ev.op = static_cast<UpdateOp>(r.u8());
  ev.u = r.i64();
  ev.v = r.i64();
  ev.w = r.i64();
  return r.ok() && static_cast<std::uint8_t>(ev.op) <=
                       static_cast<std::uint8_t>(UpdateOp::kRemoveEdge);
}

void encode_update_receipt(ByteWriter& w, const UpdateReceipt& rc) {
  w.u8(static_cast<std::uint8_t>(rc.report.status));
  w.u8(static_cast<std::uint8_t>(rc.report.cls));
  encode_edge_ref(w, rc.report.edge);
  w.i64(rc.report.old_w);
  w.i64(rc.report.new_w);
  w.i64(rc.report.swapped_out);
  w.i64(rc.report.swapped_in);
  w.u64(rc.old_fingerprint);
  w.u64(rc.new_fingerprint);
  w.u64(rc.generation);
  w.u64(rc.patched_tree_edges);
  w.u64(rc.patched_nontree_edges);
  w.u8(rc.full_relabel ? 1 : 0);
}

bool decode_update_receipt(ByteReader& r, UpdateReceipt& rc) {
  rc.report.status = static_cast<Status>(r.u8());
  rc.report.cls = static_cast<UpdateClass>(r.u8());
  if (!decode_edge_ref(r, rc.report.edge)) return false;
  rc.report.old_w = r.i64();
  rc.report.new_w = r.i64();
  rc.report.swapped_out = r.i64();
  rc.report.swapped_in = r.i64();
  rc.old_fingerprint = r.u64();
  rc.new_fingerprint = r.u64();
  rc.generation = r.u64();
  rc.patched_tree_edges = r.u64();
  rc.patched_nontree_edges = r.u64();
  rc.full_relabel = r.u8() != 0;
  return r.ok();
}

void encode_journal_record(ByteWriter& w, const JournalRecord& rec) {
  w.u64(rec.generation);
  w.u64(rec.old_fingerprint);
  w.u64(rec.new_fingerprint);
  w.i64(rec.u);
  w.i64(rec.v);
  w.i64(rec.new_w);
  w.u8(rec.cls);
  w.u8(rec.op);
}

bool decode_journal_record(ByteReader& r, JournalRecord& rec) {
  rec.generation = r.u64();
  rec.old_fingerprint = r.u64();
  rec.new_fingerprint = r.u64();
  rec.u = r.i64();
  rec.v = r.i64();
  rec.new_w = r.i64();
  rec.cls = r.u8();
  rec.op = r.u8();
  return r.ok();
}

void encode_resolved_changes(ByteWriter& w,
                             const std::vector<verify::ResolvedChange>& cs) {
  w.u64(cs.size());
  for (const verify::ResolvedChange& c : cs) {
    w.u8(c.is_tree ? 1 : 0);
    w.i64(c.id);
    w.i64(c.new_w);
  }
}

bool decode_resolved_changes(ByteReader& r,
                             std::vector<verify::ResolvedChange>& cs) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > r.remaining() / 17) return false;  // 1 + 8 + 8 each
  cs.resize(static_cast<std::size_t>(n));
  for (verify::ResolvedChange& c : cs) {
    c.is_tree = r.u8() != 0;
    c.id = r.i64();
    c.new_w = r.i64();
  }
  return r.ok();
}

void encode_meta(ByteWriter& w, const WireMeta& m) {
  w.u64(m.n);
  w.u64(m.num_nontree);
  w.u64(m.stride);
  w.u64(m.num_shards);
  w.u64(m.shard_index);
  w.i64(m.root);
  w.u64(m.violations);
  w.u64(m.fingerprint);
  w.u64(m.generation);
  w.pod(m.receipt);
}

bool decode_meta(ByteReader& r, WireMeta& m) {
  m.n = r.u64();
  m.num_nontree = r.u64();
  m.stride = r.u64();
  m.num_shards = r.u64();
  m.shard_index = r.u64();
  m.root = r.i64();
  m.violations = r.u64();
  m.fingerprint = r.u64();
  m.generation = r.u64();
  m.receipt = r.pod<CostReceipt>();
  return r.ok() && m.stride > 0 && m.num_shards > 0 &&
         m.shard_index < m.num_shards;
}

void encode_stats(ByteWriter& w, const WireStats& s) {
  w.u64(s.generation);
  w.u64(s.fingerprint);
  w.u64(s.n);
  w.u64(s.num_nontree);
  w.u64(s.violations);
  w.u64(s.num_shards);
  w.u8(s.serving);
}

bool decode_stats(ByteReader& r, WireStats& s) {
  s.generation = r.u64();
  s.fingerprint = r.u64();
  s.n = r.u64();
  s.num_nontree = r.u64();
  s.violations = r.u64();
  s.num_shards = r.u64();
  s.serving = r.u8();
  return r.ok();
}

void encode_host_state(ByteWriter& w, const ShardHostState& st) {
  encode_meta(w, st.meta);
  encode_index_shard(w, st.shard);
  w.vec(st.parent);
  w.vec(st.tree_w);
}

bool decode_host_state(ByteReader& r, ShardHostState& st) {
  if (!decode_meta(r, st.meta)) return false;
  if (!decode_index_shard(r, st.shard)) return false;
  st.parent = r.vec<Vertex>();
  st.tree_w = r.vec<Weight>();
  return r.ok() && st.parent.size() == st.meta.n &&
         st.tree_w.size() == st.meta.n;
}

void encode_patch(ByteWriter& w, const WirePatch& p) {
  w.u64(p.epoch);
  w.u64(p.fingerprint);
  w.u64(p.num_nontree);
  w.vec(p.tree_children);
  w.vec(p.tree_infos);
  w.vec(p.nontree_ids);
  w.vec(p.nontree_infos);
  w.vec(p.endpoint_keys);
  w.vec(p.endpoint_is_tree);
  w.vec(p.endpoint_ids);
}

bool decode_patch(ByteReader& r, WirePatch& p) {
  p.epoch = r.u64();
  p.fingerprint = r.u64();
  p.num_nontree = r.u64();
  p.tree_children = r.vec<Vertex>();
  p.tree_infos = r.vec<TreeEdgeInfo>();
  p.nontree_ids = r.vec<std::int64_t>();
  p.nontree_infos = r.vec<NonTreeEdgeInfo>();
  p.endpoint_keys = r.vec<std::uint64_t>();
  p.endpoint_is_tree = r.vec<std::uint8_t>();
  p.endpoint_ids = r.vec<std::int64_t>();
  return r.ok() && p.tree_children.size() == p.tree_infos.size() &&
         p.nontree_ids.size() == p.nontree_infos.size() &&
         p.endpoint_keys.size() == p.endpoint_is_tree.size() &&
         p.endpoint_keys.size() == p.endpoint_ids.size();
}

// --- telemetry ------------------------------------------------------------

RpcMetrics& rpc_metrics(MsgType request_type) {
  static std::mutex mu;
  static std::unordered_map<std::uint8_t, RpcMetrics> cache;
  std::lock_guard lock(mu);
  auto [it, fresh] = cache.try_emplace(static_cast<std::uint8_t>(request_type));
  if (fresh) {
    MetricsRegistry& reg = MetricsRegistry::instance();
    const std::string label =
        std::string("rpc=\"") + to_string(request_type) + "\"";
    it->second.latency = &reg.histogram("net_rpc_latency_ns", label);
    it->second.calls = &reg.counter("net_rpc_calls", label);
    it->second.bytes_tx =
        &reg.counter("net_rpc_bytes", label + ",dir=\"tx\"");
    it->second.bytes_rx =
        &reg.counter("net_rpc_bytes", label + ",dir=\"rx\"");
  }
  return it->second;
}

Counter& net_counter(const std::string& name) {
  return MetricsRegistry::instance().counter("net_" + name);
}

}  // namespace mpcmst::service::net
