#include "net/server.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "verify/still_mst.hpp"

namespace mpcmst::service::net {

namespace {

/// Wait for readability so idle server connections can poll the stop flag
/// without consuming partial frames: -1 error/close, 0 idle, 1 readable.
int wait_readable(const Socket& s, int timeout_ms) {
  pollfd pfd{s.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) return errno == EINTR ? 0 : -1;
  if (rc == 0) return 0;
  if (pfd.revents & (POLLERR | POLLNVAL)) return -1;
  return 1;
}

MsgType write_error(ByteWriter& rep, ServiceStatus status,
                    const std::string& msg) {
  encode_error(rep, status, msg);
  return MsgType::kError;
}

void send_error(Socket& s, ServiceStatus status, const std::string& msg) {
  ByteWriter body;
  encode_error(body, status, msg);
  try {
    send_frame(s, MsgType::kError, body);
  } catch (const ServiceError&) {
    // Best effort: the peer may already be gone.
  }
}

}  // namespace

// --- ShardHost ------------------------------------------------------------

ShardHost::ShardHost(ShardHostState st)
    : meta_(st.meta),
      shard_(std::move(st.shard)),
      parent_(std::move(st.parent)),
      tree_w_(std::move(st.tree_w)) {
  MPCMST_CHECK(parent_.size() == meta_.n && tree_w_.size() == meta_.n,
               "shard host: tree mirrors sized " << parent_.size() << "/"
                                                 << tree_w_.size()
                                                 << " for n = " << meta_.n);
  graph::RootedTree tree;
  tree.n = meta_.n;
  tree.root = meta_.root;
  tree.parent = parent_;
  tree.weight = tree_w_;
  if (meta_.n > 0) {
    MPCMST_CHECK(meta_.root >= 0 &&
                     static_cast<std::size_t>(meta_.root) < meta_.n,
                 "shard host: root " << meta_.root << " outside [0, "
                                     << meta_.n << ")");
    tree.parent[static_cast<std::size_t>(meta_.root)] = meta_.root;
    MPCMST_CHECK(tree.well_formed(),
                 "shard host: shipped parent column is not a rooted tree");
    topo_ = verify::TreeTopology(tree);
  }
}

std::size_t ShardHost::shard_of(Vertex v) const {
  return std::min(static_cast<std::size_t>(v) / meta_.stride,
                  static_cast<std::size_t>(meta_.num_shards) - 1);
}

MsgType ShardHost::answer_run(ByteReader& req, ByteWriter& rep) const {
  const std::uint64_t count = req.u64();
  std::vector<Query> qs(static_cast<std::size_t>(
      req.ok() && count <= (1u << 24) ? count : 0));
  if (qs.size() != count)
    return write_error(rep, ServiceStatus::kInvalidRequest,
                       "answer_run: unreasonable query count");
  for (Query& q : qs) {
    if (!decode_query(req, q))
      return write_error(rep, ServiceStatus::kWireError,
                         "answer_run: truncated query");
    if (q.kind == QueryKind::kTopKFragile || q.kind == QueryKind::kStillMst)
      return write_error(rep, ServiceStatus::kInvalidRequest,
                         "answer_run carries a fan-out query; use "
                         "top_k/certify");
  }
  rep.u64(qs.size());
  for (const Query& q : qs) {
    // Local-resolution half of ShardedSensitivityIndex::resolve(): the
    // client owns bounds checks and the second probe; an entry found here
    // always has its labels here (shard.hpp's ownership invariant).
    const std::optional<EdgeRef> ref = shard_.find(endpoint_key(q.u, q.v));
    if (!ref) {
      rep.u8(0);
      encode_answer(rep, Answer{});
      continue;
    }
    rep.u8(1);
    if (ref->is_tree) {
      encode_answer(rep,
                    answer_for_tree_edge(q, *ref, shard_.tree_edge(ref->id)));
    } else {
      const std::optional<NonTreeEdgeInfo> e = shard_.nontree_edge(ref->id);
      MPCMST_ASSERT(e.has_value(), "shard host: resolved non-tree edge "
                                       << ref->id << " missing locally");
      encode_answer(rep, answer_for_nontree_edge(q, *ref, *e));
    }
  }
  encode_stamp(rep, stamp());
  return MsgType::kAnswerRunReply;
}

MsgType ShardHost::top_k(ByteReader& req, ByteWriter& rep) const {
  const std::int64_t k = req.i64();
  if (!req.ok() || k < 0)
    return write_error(rep, ServiceStatus::kInvalidRequest, "top_k: bad k");
  const std::size_t take = std::min<std::size_t>(
      static_cast<std::size_t>(k), shard_.fragile_order.size());
  std::vector<FragileEntry> entries;
  entries.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const Vertex child = shard_.fragile_order[i];
    entries.push_back(make_fragile_entry(child, shard_.tree_edge(child)));
  }
  rep.vec(entries);
  encode_stamp(rep, stamp());
  return MsgType::kTopKReply;
}

MsgType ShardHost::certify(ByteReader& req, ByteWriter& rep) const {
  std::vector<verify::ResolvedChange> changes;
  if (!decode_resolved_changes(req, changes))
    return write_error(rep, ServiceStatus::kWireError,
                       "certify: truncated change batch");
  // The per-shard half of merge_still_mst (router.cpp): certify the local
  // roster, tree weights from the full mirror, path questions from the
  // local topology view.
  const verify::BatchCertifier cert(
      topo_,
      [this](Vertex child) {
        return tree_w_[static_cast<std::size_t>(child)];
      },
      changes);
  std::vector<verify::ViolationCert> certs;
  for (std::size_t r = 0; r < shard_.nontree_ids.size(); ++r)
    if (const auto viol = cert.certify(shard_.nontree_ids[r],
                                       shard_.nontree.u[r], shard_.nontree.v[r],
                                       shard_.nontree.w[r],
                                       shard_.nontree.maxpath[r]))
      certs.push_back(*viol);
  rep.vec(certs);
  encode_stamp(rep, stamp());
  return MsgType::kCertifyReply;
}

MsgType ShardHost::find_run(ByteReader& req, ByteWriter& rep) const {
  const std::uint64_t count = req.u64();
  if (!req.ok() || count > req.remaining() / 16)
    return write_error(rep, ServiceStatus::kWireError,
                       "find_run: truncated key list");
  rep.u64(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const Vertex u = req.i64();
    const Vertex v = req.i64();
    const std::optional<EdgeRef> ref = shard_.find(endpoint_key(u, v));
    rep.u8(ref.has_value() ? 1 : 0);
    rep.u8(ref && ref->is_tree ? 1 : 0);
    rep.i64(ref ? ref->id : -1);
  }
  if (!req.ok())
    return write_error(rep, ServiceStatus::kWireError,
                       "find_run: truncated key list");
  encode_stamp(rep, stamp());
  return MsgType::kFindRunReply;
}

MsgType ShardHost::nontree_info(ByteReader& req, ByteWriter& rep) const {
  const std::int64_t orig_id = req.i64();
  if (!req.ok())
    return write_error(rep, ServiceStatus::kWireError,
                       "nontree_info: truncated request");
  const std::optional<NonTreeEdgeInfo> info = shard_.nontree_edge(orig_id);
  rep.u8(info.has_value() ? 1 : 0);
  rep.pod(info.value_or(NonTreeEdgeInfo{}));
  encode_stamp(rep, stamp());
  return MsgType::kNontreeInfoReply;
}

void ShardHost::apply_patch(const WirePatch& p) {
  // Mirrors LiveShardedBackend::scatter()'s non-full branch exactly, with
  // ownership derived locally: tree infos refresh the full mirrors on every
  // server and patch labels on the owner; non-tree entries reconcile
  // against min-endpoint ownership (evicting stale slots everywhere else);
  // endpoint entries land on the shard owning the key's high vertex.
  for (std::size_t i = 0; i < p.tree_children.size(); ++i) {
    const Vertex c = p.tree_children[i];
    const TreeEdgeInfo& info = p.tree_infos[i];
    MPCMST_CHECK(c >= 0 && static_cast<std::size_t>(c) < meta_.n,
                 "patch: tree child " << c << " outside [0, " << meta_.n
                                      << ")");
    parent_[static_cast<std::size_t>(c)] = info.parent;
    tree_w_[static_cast<std::size_t>(c)] = info.w;
    if (shard_.owns(c)) shard_patch_tree(shard_, c, info);
  }
  for (std::size_t i = 0; i < p.nontree_ids.size(); ++i) {
    const NonTreeEdgeInfo& info = p.nontree_infos[i];
    const bool owned =
        shard_of(std::min(info.u, info.v)) == meta_.shard_index;
    shard_patch_nontree(shard_, owned, p.nontree_ids[i], info);
  }
  for (std::size_t i = 0; i < p.endpoint_keys.size(); ++i) {
    const std::uint64_t key = p.endpoint_keys[i];
    if (shard_of(static_cast<Vertex>(key >> 32)) != meta_.shard_index)
      continue;
    shard_patch_endpoint(
        shard_, key,
        EdgeRef{p.endpoint_is_tree[i] != 0, p.endpoint_ids[i]});
  }
  // Pure function of the slice — refreshing an untouched shard is a no-op,
  // so refreshing unconditionally matches scatter()'s conditional refresh.
  shard_refresh_cost(shard_);
  meta_.num_nontree = p.num_nontree;
  meta_.fingerprint = p.fingerprint;
  meta_.generation = p.epoch;
  shard_.generation = p.epoch;
}

std::vector<ShardHostState> make_host_states(
    const ShardedSensitivityIndex& idx, const CostReceipt& receipt) {
  // Assemble the full tree mirrors once (same walk as rebuild_topology).
  std::vector<Vertex> parent(idx.n(), -1);
  std::vector<Weight> tree_w(idx.n(), 0);
  for (std::size_t i = 0; i < idx.num_shards(); ++i) {
    const IndexShard& s = idx.shard(i);
    for (Vertex v = s.lo; v < s.hi; ++v) {
      const auto slot = static_cast<std::size_t>(v - s.lo);
      parent[static_cast<std::size_t>(v)] = s.tree.parent[slot];
      tree_w[static_cast<std::size_t>(v)] = s.tree.w[slot];
    }
  }
  std::vector<ShardHostState> out;
  out.reserve(idx.num_shards());
  for (std::size_t i = 0; i < idx.num_shards(); ++i) {
    ShardHostState st;
    st.meta.n = idx.n();
    st.meta.num_nontree = idx.num_nontree();
    st.meta.stride = idx.stride();
    st.meta.num_shards = idx.num_shards();
    st.meta.shard_index = i;
    st.meta.root = idx.root();
    st.meta.violations = idx.violations();
    st.meta.fingerprint = idx.fingerprint();
    st.meta.generation = idx.generation();
    st.meta.receipt = receipt;
    st.shard = idx.shard(i);
    st.parent = parent;
    st.tree_w = tree_w;
    out.push_back(std::move(st));
  }
  return out;
}

// --- ShardServer ----------------------------------------------------------

ShardServer::ShardServer(Listener listener, NetOptions opts)
    : listener_(std::move(listener)), opts_(opts) {}

ShardServer::~ShardServer() { stop(); }

void ShardServer::install(ShardHostState st) {
  std::unique_lock lock(mu_);
  host_ = std::make_unique<ShardHost>(std::move(st));
}

void ShardServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ShardServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::lock_guard lock(conns_mu_);
  for (std::thread& t : conns_)
    if (t.joinable()) t.join();
  conns_.clear();
}

void ShardServer::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void ShardServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Socket s = listener_.accept(stop_);
    if (!s.valid()) continue;
    std::lock_guard lock(conns_mu_);
    conns_.emplace_back(
        [this, sock = std::move(s)]() mutable { serve_conn(std::move(sock)); });
  }
}

void ShardServer::serve_conn(Socket s) {
  s.set_io_timeout(opts_.io_timeout_ms);
  while (!stop_.load(std::memory_order_acquire)) {
    const int rc = wait_readable(s, 100);
    if (rc < 0) return;
    if (rc == 0) continue;
    Frame f;
    try {
      f = recv_frame(s);
    } catch (const ServiceError& e) {
      if (e.status() == ServiceStatus::kVersionMismatch)
        send_error(s, ServiceStatus::kVersionMismatch,
                   "this server speaks wire version " +
                       std::to_string(kWireVersion));
      return;
    }
    if (!handle_frame(s, f)) return;
  }
}

bool ShardServer::handle_frame(Socket& s, const Frame& f) {
  ByteReader req(f.body.data(), f.body.size());
  ByteWriter rep;
  MsgType rtype = MsgType::kOk;
  try {
    switch (f.type) {
      case MsgType::kPing:
        rtype = MsgType::kPong;
        break;
      case MsgType::kShutdown:
        send_frame(s, MsgType::kOk, rep);
        stop_.store(true, std::memory_order_release);
        return false;
      case MsgType::kBootstrap: {
        ShardHostState st;
        if (!decode_host_state(req, st)) {
          rtype = write_error(rep, ServiceStatus::kWireError,
                              "bootstrap: truncated shard state");
          break;
        }
        install(std::move(st));
        break;  // kOk
      }
      case MsgType::kPatch: {
        WirePatch p;
        if (!decode_patch(req, p)) {
          rtype = write_error(rep, ServiceStatus::kWireError,
                              "patch: truncated payload");
          break;
        }
        std::unique_lock lock(mu_);
        if (!host_) {
          rtype = write_error(rep, ServiceStatus::kUnavailable,
                              "patch before bootstrap");
          break;
        }
        host_->apply_patch(p);
        break;  // kOk
      }
      default: {
        std::shared_lock lock(mu_);
        if (!host_) {
          rtype = write_error(rep, ServiceStatus::kUnavailable,
                              "shard server not bootstrapped yet");
          break;
        }
        switch (f.type) {
          case MsgType::kMeta:
            encode_meta(rep, host_->meta());
            rtype = MsgType::kMetaReply;
            break;
          case MsgType::kAnswerRun:
            rtype = host_->answer_run(req, rep);
            break;
          case MsgType::kTopK:
            rtype = host_->top_k(req, rep);
            break;
          case MsgType::kCertify:
            rtype = host_->certify(req, rep);
            break;
          case MsgType::kFindRun:
            rtype = host_->find_run(req, rep);
            break;
          case MsgType::kNontreeInfo:
            rtype = host_->nontree_info(req, rep);
            break;
          default:
            rtype = write_error(
                rep, ServiceStatus::kInvalidRequest,
                std::string("shard server cannot serve ") + to_string(f.type));
            break;
        }
      }
    }
  } catch (const ServiceError& e) {
    rep = ByteWriter();
    rtype = write_error(rep, e.status(), e.what());
  } catch (const ModelError& e) {
    rep = ByteWriter();
    rtype = write_error(rep, ServiceStatus::kInvalidRequest, e.what());
  }
  try {
    send_frame(s, rtype, rep);
  } catch (const ServiceError&) {
    return false;
  }
  return true;
}

// --- ServiceServer --------------------------------------------------------

ServiceServer::ServiceServer(Listener listener, ServiceProvider provider,
                             NetOptions opts)
    : listener_(std::move(listener)),
      opts_(opts),
      provider_(std::move(provider)) {}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServiceServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::lock_guard lock(conns_mu_);
  for (std::thread& t : conns_)
    if (t.joinable()) t.join();
  conns_.clear();
}

void ServiceServer::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void ServiceServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Socket s = listener_.accept(stop_);
    if (!s.valid()) continue;
    std::lock_guard lock(conns_mu_);
    conns_.emplace_back(
        [this, sock = std::move(s)]() mutable { serve_conn(std::move(sock)); });
  }
}

void ServiceServer::serve_conn(Socket s) {
  s.set_io_timeout(opts_.io_timeout_ms);
  while (!stop_.load(std::memory_order_acquire)) {
    const int rc = wait_readable(s, 100);
    if (rc < 0) return;
    if (rc == 0) continue;
    Frame f;
    try {
      f = recv_frame(s);
    } catch (const ServiceError& e) {
      if (e.status() == ServiceStatus::kVersionMismatch)
        send_error(s, ServiceStatus::kVersionMismatch,
                   "this server speaks wire version " +
                       std::to_string(kWireVersion));
      return;
    }
    bool handed_off = false;
    const bool keep = handle_frame(s, f, handed_off);
    if (handed_off) return;  // the replication hub owns the socket now
    if (!keep) return;
  }
}

bool ServiceServer::handle_frame(Socket& s, const Frame& f, bool& handed_off) {
  ByteReader req(f.body.data(), f.body.size());
  ByteWriter rep;
  MsgType rtype = MsgType::kOk;
  try {
    switch (f.type) {
      case MsgType::kPing:
        rtype = MsgType::kPong;
        break;
      case MsgType::kShutdown:
        send_frame(s, MsgType::kOk, rep);
        stop_.store(true, std::memory_order_release);
        return false;
      case MsgType::kQuery: {
        const std::shared_ptr<QueryService> svc = provider_();
        if (!svc) {
          rtype = write_error(rep, ServiceStatus::kUnavailable,
                              "no backend behind this endpoint yet");
          break;
        }
        Query q;
        if (!decode_query(req, q)) {
          rtype = write_error(rep, ServiceStatus::kWireError,
                              "query: truncated payload");
          break;
        }
        const Answer a = svc->answer(q);
        encode_answer(rep, a);
        encode_stamp(rep, WireStamp{svc->backend().generation(),
                                    svc->backend().fingerprint()});
        rtype = MsgType::kQueryReply;
        break;
      }
      case MsgType::kStats: {
        const std::shared_ptr<QueryService> svc = provider_();
        WireStats st;
        if (svc) {
          const IndexBackend& b = svc->backend();
          st.generation = b.generation();
          st.fingerprint = b.fingerprint();
          st.n = b.n();
          st.num_nontree = b.num_nontree();
          st.violations = b.violations();
          st.num_shards = b.num_shards();
          st.serving = 1;
        } else {
          st.serving = 0;
        }
        encode_stats(rep, st);
        rtype = MsgType::kStatsReply;
        break;
      }
      case MsgType::kIngest: {
        if (!ingest_) {
          rtype = write_error(rep, ServiceStatus::kNotLeader,
                              "this endpoint does not accept mutations");
          break;
        }
        const std::uint64_t count = req.u64();
        std::vector<EdgeEvent> events(static_cast<std::size_t>(
            req.ok() && count <= (1u << 24) ? count : 0));
        if (events.size() != count) {
          rtype = write_error(rep, ServiceStatus::kWireError,
                              "ingest: unreasonable event count");
          break;
        }
        bool ok = true;
        for (EdgeEvent& ev : events)
          if (!decode_edge_event(req, ev)) {
            ok = false;
            break;
          }
        if (!ok) {
          rtype = write_error(rep, ServiceStatus::kWireError,
                              "ingest: truncated event stream");
          break;
        }
        const std::vector<UpdateReceipt> receipts = ingest_(events);
        rep.u64(receipts.size());
        for (const UpdateReceipt& rc : receipts) encode_update_receipt(rep, rc);
        rtype = MsgType::kIngestReply;
        break;
      }
      case MsgType::kSubscribe: {
        const std::uint64_t last_gen = req.u64();
        const bool have_state = req.u8() != 0;
        if (!req.ok()) {
          rtype = write_error(rep, ServiceStatus::kWireError,
                              "subscribe: truncated payload");
          break;
        }
        if (!subscribe_) {
          rtype = write_error(rep, ServiceStatus::kNotLeader,
                              "this endpoint has no replication hub");
          break;
        }
        send_frame(s, MsgType::kOk, rep);
        subscribe_(std::move(s), last_gen, have_state);
        handed_off = true;
        return false;
      }
      default:
        rtype = write_error(
            rep, ServiceStatus::kInvalidRequest,
            std::string("service server cannot serve ") + to_string(f.type));
        break;
    }
  } catch (const ServiceError& e) {
    rep = ByteWriter();
    rtype = write_error(rep, e.status(), e.what());
  } catch (const ModelError& e) {
    rep = ByteWriter();
    rtype = write_error(rep, ServiceStatus::kInvalidRequest, e.what());
  }
  try {
    send_frame(s, rtype, rep);
  } catch (const ServiceError&) {
    return false;
  }
  return true;
}

}  // namespace mpcmst::service::net
