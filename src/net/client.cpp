#include "net/client.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <queue>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/check.hpp"
#include "graph/instance.hpp"
#include "net/server.hpp"
#include "service/snapshot.hpp"

namespace mpcmst::service::net {

// --- ShardConn ------------------------------------------------------------

ShardConn::ShardConn(std::string endpoint, NetOptions opts)
    : endpoint_(std::move(endpoint)), opts_(opts) {}

void ShardConn::invalidate() {
  std::lock_guard lock(mu_);
  sock_.close();
}

Frame ShardConn::call(MsgType t, const ByteWriter& body) {
  std::lock_guard lock(mu_);
  RpcMetrics& m = rpc_metrics(t);
  Frame reply;
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t t0 = metrics_enabled() ? metrics_now_ns() : 0;
    try {
      if (!sock_.valid()) sock_ = dial(endpoint_, opts_);
      const std::size_t tx = send_frame(sock_, t, body);
      std::size_t rx = 0;
      reply = recv_frame(sock_, &rx);
      m.calls->inc();
      m.bytes_tx->inc(tx);
      m.bytes_rx->inc(rx);
      if (t0 != 0) m.latency->record(metrics_now_ns() - t0);
      break;
    } catch (const ServiceError& e) {
      sock_.close();
      const bool transport = e.status() == ServiceStatus::kTimeout ||
                             e.status() == ServiceStatus::kWireError;
      net_counter(e.status() == ServiceStatus::kTimeout ? "timeouts"
                                                        : "wire_errors")
          .inc();
      if (!transport || attempt >= opts_.reconnect_attempts)
        throw ServiceError(e.status(), endpoint_ + ": " + e.what());
      if (opts_.reconnect_backoff_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.reconnect_backoff_ms));
      net_counter("reconnects").inc();
    }
  }
  if (reply.type == MsgType::kError) {
    ServiceStatus status = ServiceStatus::kWireError;
    std::string msg;
    ByteReader r(reply.body.data(), reply.body.size());
    if (!decode_error(r, status, msg)) msg = "malformed error reply";
    throw ServiceError(status, endpoint_ + ": " + msg);
  }
  return reply;
}

namespace {

// --- shared merge machinery -----------------------------------------------

/// The networked reading of the router's epoch barrier: every state-reading
/// reply that contributes to one merged answer must carry the same stamp.
/// The leader pre-fills `expect` with its authoritative epoch; the read-only
/// backend starts empty and requires mutual agreement.
struct StampCheck {
  std::optional<WireStamp> expect;

  void observe(const WireStamp& s, const std::string& endpoint) {
    if (!expect) {
      expect = s;
      return;
    }
    if (!(*expect == s))
      throw ServiceError(
          ServiceStatus::kEpochRetry,
          endpoint + ": reply stamped generation " +
              std::to_string(s.generation) + ", merge pinned to " +
              std::to_string(expect->generation));
  }
};

bool retryable(ServiceStatus s) {
  return s == ServiceStatus::kEpochRetry || s == ServiceStatus::kTimeout ||
         s == ServiceStatus::kWireError || s == ServiceStatus::kUnavailable;
}

Frame call_expect(ShardConn& c, MsgType req, const ByteWriter& body,
                  MsgType want) {
  Frame f = c.call(req, body);
  if (f.type != want)
    throw ServiceError(ServiceStatus::kWireError,
                       c.endpoint() + ": unexpected " +
                           std::string(to_string(f.type)) + " reply to " +
                           to_string(req));
  return f;
}

[[noreturn]] void truncated(const ShardConn& c, const char* what) {
  throw ServiceError(ServiceStatus::kWireError,
                     c.endpoint() + ": truncated " + std::string(what) +
                         " reply");
}

/// Connection fan + the partition arithmetic of ShardedSensitivityIndex
/// (stride-sized ranges, trailing shards may be empty).
struct TierView {
  const std::vector<std::shared_ptr<ShardConn>>& conns;
  std::size_t n;
  std::size_t stride;

  std::size_t shard_of(Vertex v) const {
    return std::min(static_cast<std::size_t>(v) / stride, conns.size() - 1);
  }
  bool in_bounds(Vertex u, Vertex v) const {
    return u >= 0 && v >= 0 && u < static_cast<Vertex>(n) &&
           v < static_cast<Vertex>(n);
  }
};

WireStamp read_stamp(ByteReader& r, const ShardConn& c, const char* what) {
  WireStamp s;
  if (!decode_stamp(r, s) || !r.ok()) truncated(c, what);
  return s;
}

/// Answer every point query in `qs` (fan-out kinds are skipped), writing
/// into the parallel `out`.  The two-probe protocol of resolve(): round 0
/// probes shard_of(u) (one batched RPC per shard), unresolved keys go to
/// shard_of(v) in round 1, and a key neither shard knows is kUnknownEdge —
/// exactly the in-process precedence, since a key lives in at most one
/// shard's endpoint map.
void answer_points(const TierView& t, const std::vector<Query>& qs,
                   std::vector<Answer>& out, StampCheck& st) {
  std::vector<std::vector<std::size_t>> probe(t.conns.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const Query& q = qs[i];
    if (q.kind == QueryKind::kTopKFragile || q.kind == QueryKind::kStillMst)
      continue;
    if (!t.in_bounds(q.u, q.v)) {
      out[i].status = Status::kUnknownEdge;
      continue;
    }
    probe[t.shard_of(q.u)].push_back(i);
  }
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<std::size_t>> next(t.conns.size());
    for (std::size_t s = 0; s < t.conns.size(); ++s) {
      if (probe[s].empty()) continue;
      ShardConn& conn = *t.conns[s];
      ByteWriter body;
      body.u64(probe[s].size());
      for (const std::size_t i : probe[s]) encode_query(body, qs[i]);
      Frame f = call_expect(conn, MsgType::kAnswerRun, body,
                            MsgType::kAnswerRunReply);
      ByteReader r(f.body.data(), f.body.size());
      if (r.u64() != probe[s].size()) truncated(conn, "answer_run");
      for (const std::size_t i : probe[s]) {
        const bool resolved = r.u8() != 0;
        Answer a;
        if (!decode_answer(r, a)) truncated(conn, "answer_run");
        if (resolved) {
          out[i] = std::move(a);
          continue;
        }
        const std::size_t second = t.shard_of(qs[i].v);
        if (round == 0 && second != s)
          next[second].push_back(i);
        else
          out[i].status = Status::kUnknownEdge;
      }
      st.observe(read_stamp(r, conn, "answer_run"), conn.endpoint());
    }
    probe = std::move(next);
  }
}

/// merge_top_k (router.cpp) over per-shard prefix replies: each shard hands
/// back its first min(k, |order|) fragility rows (already (sens, id)
/// ascending), and the same min-heap interleaves them.  Consuming at most k
/// rows total means the prefixes are always deep enough.
Answer merged_top_k(const TierView& t, const Query& q, StampCheck& st) {
  Answer a;
  const std::size_t total = t.n ? t.n - 1 : 0;
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(q.k), total);
  a.fragile.reserve(k);
  if (k == 0) return a;
  ByteWriter body;
  body.i64(static_cast<std::int64_t>(k));
  std::vector<std::vector<FragileEntry>> per(t.conns.size());
  for (std::size_t s = 0; s < t.conns.size(); ++s) {
    ShardConn& conn = *t.conns[s];
    Frame f = call_expect(conn, MsgType::kTopK, body, MsgType::kTopKReply);
    ByteReader r(f.body.data(), f.body.size());
    per[s] = r.vec<FragileEntry>();
    if (!r.ok()) truncated(conn, "top_k");
    st.observe(read_stamp(r, conn, "top_k"), conn.endpoint());
  }
  struct Head {
    Weight sens;
    Vertex child;
    std::size_t shard;
    std::size_t pos;
  };
  const auto after = [](const Head& x, const Head& y) {
    return x.sens != y.sens ? x.sens > y.sens : x.child > y.child;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heap(after);
  for (std::size_t s = 0; s < per.size(); ++s)
    if (!per[s].empty())
      heap.push(Head{per[s][0].sens, per[s][0].child, s, 0});
  while (a.fragile.size() < k && !heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    a.fragile.push_back(per[head.shard][head.pos]);
    const std::size_t next = head.pos + 1;
    if (next < per[head.shard].size())
      heap.push(Head{per[head.shard][next].sens, per[head.shard][next].child,
                     head.shard, next});
  }
  return a;
}

/// merge_still_mst's fan-out half over an already-resolved batch: every
/// shard certifies its roster against the batch, the certificates merge to
/// global ascending orig_id.
Answer merged_still_mst(const TierView& t,
                        const std::vector<verify::ResolvedChange>& resolved,
                        StampCheck& st) {
  Answer a;
  ByteWriter body;
  encode_resolved_changes(body, resolved);
  for (std::size_t s = 0; s < t.conns.size(); ++s) {
    ShardConn& conn = *t.conns[s];
    Frame f = call_expect(conn, MsgType::kCertify, body,
                          MsgType::kCertifyReply);
    ByteReader r(f.body.data(), f.body.size());
    const std::vector<verify::ViolationCert> certs =
        r.vec<verify::ViolationCert>();
    if (!r.ok()) truncated(conn, "certify");
    st.observe(read_stamp(r, conn, "certify"), conn.endpoint());
    a.certificates.insert(a.certificates.end(), certs.begin(), certs.end());
  }
  std::sort(a.certificates.begin(), a.certificates.end(),
            [](const verify::ViolationCert& x, const verify::ViolationCert& y) {
              return x.orig_id < y.orig_id;
            });
  a.still_optimal = a.certificates.empty();
  return a;
}

/// Two-probe batched endpoint resolution (the remote form of resolve()).
std::vector<std::optional<EdgeRef>> find_keys(
    const TierView& t, const std::vector<std::pair<Vertex, Vertex>>& keys,
    StampCheck& st) {
  std::vector<std::optional<EdgeRef>> out(keys.size());
  std::vector<std::vector<std::size_t>> probe(t.conns.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    if (t.in_bounds(keys[i].first, keys[i].second))
      probe[t.shard_of(keys[i].first)].push_back(i);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<std::size_t>> next(t.conns.size());
    for (std::size_t s = 0; s < t.conns.size(); ++s) {
      if (probe[s].empty()) continue;
      ShardConn& conn = *t.conns[s];
      ByteWriter body;
      body.u64(probe[s].size());
      for (const std::size_t i : probe[s]) {
        body.i64(keys[i].first);
        body.i64(keys[i].second);
      }
      Frame f =
          call_expect(conn, MsgType::kFindRun, body, MsgType::kFindRunReply);
      ByteReader r(f.body.data(), f.body.size());
      if (r.u64() != probe[s].size()) truncated(conn, "find_run");
      for (const std::size_t i : probe[s]) {
        const bool has = r.u8() != 0;
        const bool is_tree = r.u8() != 0;
        const std::int64_t id = r.i64();
        if (has) {
          out[i] = EdgeRef{is_tree, id};
          continue;
        }
        const std::size_t second = t.shard_of(keys[i].second);
        if (round == 0 && second != s) next[second].push_back(i);
      }
      if (!r.ok()) truncated(conn, "find_run");
      st.observe(read_stamp(r, conn, "find_run"), conn.endpoint());
    }
    probe = std::move(next);
  }
  return out;
}

// --- RemoteShardBackend ---------------------------------------------------

/// Read-only attach to a running tier.  All tier-shape fields are cached
/// from the shards' kMeta replies.  Every operation pins its expected stamp
/// to the cached one before fanning out, so a reply from a newer epoch —
/// whose n/stride may no longer match the cached routing view — surfaces as
/// kEpochRetry, refreshes the metas, and retries against the new shape
/// rather than mis-routing (e.g. a vertex attach changes the stride).
class RemoteShardBackend final : public IndexBackend {
 public:
  RemoteShardBackend(const std::vector<std::string>& endpoints,
                     NetOptions opts) {
    MPCMST_CHECK(!endpoints.empty(),
                 "remote backend: the endpoint list is empty");
    conns_.reserve(endpoints.size());
    for (const std::string& ep : endpoints)
      conns_.push_back(std::make_shared<ShardConn>(ep, opts));
    refresh_metas();
  }

  Answer answer(const Query& q) const override {
    return with_retry([&](StampCheck& st) { return answer_at(q, st); });
  }

  std::vector<Answer> answer_many(
      const std::vector<Query>& qs) const override {
    return with_retry([&](StampCheck& st) {
      const TierView t = view();
      std::vector<Answer> out(qs.size());
      for (std::size_t i = 0; i < qs.size(); ++i)
        if (qs[i].kind == QueryKind::kTopKFragile ||
            qs[i].kind == QueryKind::kStillMst)
          out[i] = answer_at(qs[i], st);
      answer_points(t, qs, out, st);
      return out;
    });
  }

  std::size_t n() const override {
    return n_.load(std::memory_order_acquire);
  }
  std::size_t num_nontree() const override {
    return num_nontree_.load(std::memory_order_acquire);
  }
  bool is_mst() const override { return violations() == 0; }
  std::size_t violations() const override {
    return violations_.load(std::memory_order_acquire);
  }
  std::uint64_t fingerprint() const override {
    return fingerprint_.load(std::memory_order_acquire);
  }
  const CostReceipt& receipt() const override { return receipt_; }
  std::size_t num_shards() const override { return conns_.size(); }
  std::uint64_t generation() const override {
    return generation_.load(std::memory_order_acquire);
  }
  bool batched_runs() const override { return true; }

  std::size_t shard_hint(const Query& q) const override {
    if (q.kind == QueryKind::kTopKFragile || q.kind == QueryKind::kStillMst)
      return 0;
    const Vertex a = std::min(q.u, q.v);
    if (a < 0 || a >= static_cast<Vertex>(n())) return 0;
    return view().shard_of(a);
  }

  std::optional<EdgeRef> find(Vertex u, Vertex v) const override {
    return with_retry([&](StampCheck& st) {
      return find_keys(view(), {{u, v}}, st)[0];
    });
  }

  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override {
    return with_retry(
        [&](StampCheck& st) -> std::optional<NonTreeEdgeInfo> {
          const TierView t = view();
          ByteWriter body;
          body.i64(orig_id);
          for (const auto& conn : t.conns) {
            Frame f = call_expect(*conn, MsgType::kNontreeInfo, body,
                                  MsgType::kNontreeInfoReply);
            ByteReader r(f.body.data(), f.body.size());
            const bool has = r.u8() != 0;
            const NonTreeEdgeInfo info = r.pod<NonTreeEdgeInfo>();
            st.observe(read_stamp(r, *conn, "nontree_info"),
                       conn->endpoint());
            if (has) return info;
          }
          return std::nullopt;
        });
  }

 private:
  TierView view() const {
    return TierView{conns_, n_.load(std::memory_order_acquire),
                    stride_.load(std::memory_order_acquire)};
  }

  Answer answer_at(const Query& q, StampCheck& st) const {
    const TierView t = view();
    if (q.kind == QueryKind::kTopKFragile) return merged_top_k(t, q, st);
    if (q.kind == QueryKind::kStillMst) {
      Answer a;
      std::vector<std::pair<Vertex, Vertex>> keys;
      keys.reserve(q.changes.size());
      for (const PriceChange& c : q.changes) keys.emplace_back(c.u, c.v);
      const auto refs = find_keys(t, keys, st);
      std::vector<verify::ResolvedChange> resolved;
      resolved.reserve(keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (!refs[i]) {
          a.status = Status::kUnknownEdge;
          return a;
        }
        resolved.push_back(verify::ResolvedChange{
            refs[i]->is_tree, refs[i]->id, q.changes[i].new_w});
      }
      return merged_still_mst(t, resolved, st);
    }
    const std::vector<Query> qs{q};
    std::vector<Answer> out(1);
    answer_points(t, qs, out, st);
    return out[0];
  }

  template <typename Fn>
  std::invoke_result_t<Fn&, StampCheck&> with_retry(Fn&& fn) const {
    for (int attempt = 0;; ++attempt) {
      try {
        // Pin the expected stamp to the cached one: the routing view (n,
        // stride) read inside fn() belongs to this stamp, so any reply from
        // a different epoch must force a refresh + retry, never a silent
        // merge over a stale view.
        StampCheck st;
        {
          std::lock_guard lock(stamp_mu_);
          st.expect =
              WireStamp{generation_.load(std::memory_order_relaxed),
                        fingerprint_.load(std::memory_order_relaxed)};
        }
        return fn(st);
      } catch (const ServiceError& e) {
        if (attempt >= 2 || !retryable(e.status())) throw;
        if (e.status() == ServiceStatus::kEpochRetry)
          net_counter("epoch_retries").inc();
        refresh_metas();
      }
    }
  }

  /// Fetch every shard's kMeta, cross-validate, and install the tier shape.
  /// Shards disagreeing among themselves (an update torn across the reads)
  /// surface as kEpochRetry so with_retry simply tries again.
  void refresh_metas() const {
    std::vector<WireMeta> metas(conns_.size());
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Frame f = call_expect(*conns_[i], MsgType::kMeta, ByteWriter(),
                            MsgType::kMetaReply);
      ByteReader r(f.body.data(), f.body.size());
      if (!decode_meta(r, metas[i])) truncated(*conns_[i], "meta");
      if (metas[i].num_shards != conns_.size() || metas[i].shard_index != i)
        throw ServiceError(
            ServiceStatus::kInvalidRequest,
            conns_[i]->endpoint() + ": serves shard " +
                std::to_string(metas[i].shard_index) + " of " +
                std::to_string(metas[i].num_shards) +
                ", endpoint list expects shard " + std::to_string(i) +
                " of " + std::to_string(conns_.size()));
      if (metas[i].n != metas[0].n || metas[i].stride != metas[0].stride ||
          metas[i].fingerprint != metas[0].fingerprint ||
          metas[i].generation != metas[0].generation)
        throw ServiceError(ServiceStatus::kEpochRetry,
                           conns_[i]->endpoint() +
                               ": meta disagrees with shard 0 (torn update "
                               "or mixed tiers)");
    }
    std::lock_guard lock(stamp_mu_);
    n_.store(metas[0].n, std::memory_order_release);
    stride_.store(metas[0].stride, std::memory_order_release);
    num_nontree_.store(metas[0].num_nontree, std::memory_order_release);
    violations_.store(metas[0].violations, std::memory_order_release);
    if (metas[0].generation >=
        generation_.load(std::memory_order_relaxed)) {
      generation_.store(metas[0].generation, std::memory_order_release);
      fingerprint_.store(metas[0].fingerprint, std::memory_order_release);
    }
    receipt_ = metas[0].receipt;
  }

  std::vector<std::shared_ptr<ShardConn>> conns_;
  mutable std::mutex stamp_mu_;
  mutable std::atomic<std::size_t> n_{0};
  mutable std::atomic<std::size_t> stride_{1};
  mutable std::atomic<std::size_t> num_nontree_{0};
  mutable std::atomic<std::size_t> violations_{0};
  mutable std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::uint64_t> fingerprint_{0};
  mutable CostReceipt receipt_;
};

// --- LeaderShardedBackend -------------------------------------------------

/// The UpdatableBackend that owns a networked tier: same LiveCore, same
/// commit path as LiveShardedBackend, with scatter() replaced by one kPatch
/// RPC per shard (the servers apply it through the identical shard patch
/// primitives).  A shard whose patch RPC fails — or that answers a query
/// with a foreign stamp after a restart — is marked dirty and
/// re-bootstrapped from the authoritative core on the next unique-lock
/// section; the leader itself never poisons on shard faults, only on its
/// own journal-commit failures.
class LeaderShardedBackend final : public UpdatableBackend {
 public:
  LeaderShardedBackend(graph::Instance inst,
                       std::shared_ptr<const SensitivityIndex> snapshot,
                       const std::vector<std::string>& endpoints,
                       NetOptions opts)
      : core_(std::move(inst), snapshot) {
    MPCMST_CHECK(!endpoints.empty(), "leader: the endpoint list is empty");
    MPCMST_CHECK(
        endpoints.size() == clamp_shard_count(endpoints.size(), snapshot->n()),
        "leader: " << endpoints.size() << " shard endpoints for "
                   << snapshot->n()
                   << " vertices (a shard must own at least one vertex)");
    conns_.reserve(endpoints.size());
    for (const std::string& ep : endpoints)
      conns_.push_back(std::make_shared<ShardConn>(ep, opts));
    dirty_.assign(conns_.size(), 1);
    const auto split =
        ShardedSensitivityIndex::split(*snapshot, endpoints.size());
    receipt_ = split->receipt();
    n_.store(split->n(), std::memory_order_release);
    stride_.store(split->stride(), std::memory_order_release);
    bootstrap_locked(*split, 0);
    MPCMST_CHECK(!dirty_any_.load(std::memory_order_relaxed),
                 "leader: could not bootstrap every shard server");
  }

  Answer answer(const Query& q) const override {
    return query_with_resync([&](StampCheck& st) { return answer_at(q, st); });
  }

  std::vector<Answer> answer_many(
      const std::vector<Query>& qs) const override {
    return query_with_resync([&](StampCheck& st) {
      std::vector<Answer> out(qs.size());
      for (std::size_t i = 0; i < qs.size(); ++i)
        if (qs[i].kind == QueryKind::kTopKFragile ||
            qs[i].kind == QueryKind::kStillMst)
          out[i] = answer_at(qs[i], st);
      answer_points(view(), qs, out, st);
      return out;
    });
  }

  std::size_t n() const override {
    std::shared_lock lock(mu_);
    return core_.index().n();
  }
  std::size_t num_nontree() const override {
    std::shared_lock lock(mu_);
    return core_.index().num_nontree();
  }
  bool is_mst() const override { return violations() == 0; }
  std::size_t violations() const override {
    std::shared_lock lock(mu_);
    return core_.index().violations();
  }
  std::uint64_t fingerprint() const override {
    std::shared_lock lock(mu_);
    return core_.index().fingerprint();
  }
  const CostReceipt& receipt() const override { return receipt_; }
  std::size_t num_shards() const override { return conns_.size(); }
  std::uint64_t generation() const override {
    return generation_.load(std::memory_order_acquire);
  }
  bool batched_runs() const override { return true; }

  /// Partition arithmetic only, lock-free (the batch fast path calls this
  /// while workers hold the shared lock) — mirrors point_query_shard.
  std::size_t shard_hint(const Query& q) const override {
    if (q.kind == QueryKind::kTopKFragile || q.kind == QueryKind::kStillMst)
      return 0;
    const Vertex a = std::min(q.u, q.v);
    if (a < 0 ||
        a >= static_cast<Vertex>(n_.load(std::memory_order_acquire)))
      return 0;
    return std::min(
        static_cast<std::size_t>(a) / stride_.load(std::memory_order_acquire),
        conns_.size() - 1);
  }

  std::optional<EdgeRef> find(Vertex u, Vertex v) const override {
    std::shared_lock lock(mu_);
    return core_.index().find(u, v);
  }

  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override {
    std::shared_lock lock(mu_);
    if (orig_id < 0 ||
        orig_id >= static_cast<std::int64_t>(core_.index().num_nontree()))
      return std::nullopt;
    return core_.index().nontree_edge(orig_id);
  }

  std::vector<UpdateReceipt> ingest(
      const std::vector<EdgeEvent>& events) override {
    const bool timed = metrics_enabled();
    std::vector<UpdateReceipt> receipts;
    std::vector<std::uint64_t> durations;
    receipts.reserve(events.size());
    durations.reserve(events.size());
    std::unique_lock lock(mu_);
    check_not_poisoned();
    resync_locked();  // heal restarted shards before advancing the epoch
    std::uint64_t epoch = generation_.load(std::memory_order_relaxed);
    std::vector<JournalRecord> staged;
    // Same group-commit section as LiveShardedBackend::ingest, with
    // scatter() swapped for ship().  A throw from the core or the journal
    // poisons (applied-but-unjournaled state must not serve); a shard RPC
    // fault does NOT — ship() marks the shard dirty and the authoritative
    // core re-bootstraps it later.
    try {
      for (const EdgeEvent& ev : events) {
        const std::uint64_t t0 = timed ? metrics_now_ns() : 0;
        const std::uint64_t old_fp = core_.index().fingerprint();
        const auto out = core_.apply_event(ev);
        UpdateReceipt r = make_update_receipt(core_, out, old_fp);
        if (advances_epoch(r.report)) {
          ++epoch;
          staged.push_back(make_journal_record(epoch, r, ev));
          ship(out.changed, epoch);
        }
        r.generation = epoch;
        receipts.push_back(std::move(r));
        durations.push_back(timed ? metrics_now_ns() - t0 : 0);
      }
      if (persist_ && !staged.empty()) persist_->commit_batch(staged);
    } catch (...) {
      poisoned_.store(true, std::memory_order_release);
      throw;
    }
    generation_.store(epoch, std::memory_order_release);
    if (commit_listener_ && !staged.empty()) commit_listener_(staged);
    try {
      if (persist_ && persist_->checkpoint_due())
        persist_->checkpoint(epoch, core_.index(), nullptr);
    } catch (...) {
      poisoned_.store(true, std::memory_order_release);
      throw;
    }
    lock.unlock();
    for (std::size_t i = 0; i < receipts.size(); ++i)
      record_update_telemetry(receipts[i], durations[i]);
    return receipts;
  }

  graph::Instance instance_snapshot() const override {
    std::shared_lock lock(mu_);
    return core_.instance();
  }

  void attach_persistence(std::shared_ptr<Persistence> p) override {
    std::unique_lock lock(mu_);
    persist_ = std::move(p);
  }

  void checkpoint() override {
    std::unique_lock lock(mu_);
    check_not_poisoned();
    if (!persist_) return;
    persist_->checkpoint(generation_.load(std::memory_order_relaxed),
                         core_.index(), nullptr);
  }

 private:
  void check_not_poisoned() const {
    if (poisoned_.load(std::memory_order_acquire))
      throw ServiceError(
          ServiceStatus::kPoisoned,
          "leader backend is poisoned: a journal commit failed after the "
          "state mutated; recover the tier from its persistence dir");
  }

  TierView view() const {
    return TierView{conns_, n_.load(std::memory_order_acquire),
                    stride_.load(std::memory_order_acquire)};
  }

  Answer answer_at(const Query& q, StampCheck& st) const {
    const TierView t = view();
    if (q.kind == QueryKind::kTopKFragile) return merged_top_k(t, q, st);
    if (q.kind == QueryKind::kStillMst) {
      // The leader resolves the batch against its authoritative core (the
      // identical precedence resolve() applies), then fans the certification
      // out to the shard rosters.
      Answer a;
      std::vector<verify::ResolvedChange> resolved;
      a.status = resolve_changes(
          [this](Vertex u, Vertex v) { return core_.index().find(u, v); },
          q.changes, resolved);
      if (a.status != Status::kOk) return a;
      return merged_still_mst(t, resolved, st);
    }
    const std::vector<Query> qs{q};
    std::vector<Answer> out(1);
    answer_points(t, qs, out, st);
    return out[0];
  }

  template <typename Fn>
  std::invoke_result_t<Fn&, StampCheck&> query_with_resync(Fn&& fn) const {
    check_not_poisoned();
    for (int attempt = 0;; ++attempt) {
      if (!dirty_any_.load(std::memory_order_acquire)) {
        std::shared_lock lock(mu_);
        try {
          StampCheck st;
          st.expect = WireStamp{generation_.load(std::memory_order_relaxed),
                                core_.index().fingerprint()};
          return fn(st);
        } catch (const ServiceError& e) {
          if (attempt >= 2 || !retryable(e.status())) throw;
          if (e.status() == ServiceStatus::kEpochRetry)
            net_counter("epoch_retries").inc();
          // Somebody answered with foreign state or dropped the connection;
          // suspect the whole tier and re-verify under the writer lock.
          tier_suspect_.store(true, std::memory_order_release);
        }
      } else if (attempt >= 2) {
        throw ServiceError(ServiceStatus::kUnavailable,
                           "shard tier degraded: a shard server cannot be "
                           "reached or re-bootstrapped");
      }
      std::unique_lock lock(mu_);
      if (tier_suspect_.exchange(false, std::memory_order_acq_rel)) {
        std::fill(dirty_.begin(), dirty_.end(), 1);
        dirty_any_.store(true, std::memory_order_release);
      }
      resync_locked();
    }
  }

  /// Re-verify every dirty shard (cheap kMeta probe against the leader's
  /// epoch) and re-bootstrap the ones that really lost their slice.  Caller
  /// holds the unique lock.
  void resync_locked() const {
    if (!dirty_any_.load(std::memory_order_relaxed)) return;
    const std::uint64_t epoch = generation_.load(std::memory_order_relaxed);
    const std::uint64_t fp = core_.index().fingerprint();
    std::vector<std::size_t> need;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (!dirty_[i]) continue;
      try {
        Frame f = call_expect(*conns_[i], MsgType::kMeta, ByteWriter(),
                              MsgType::kMetaReply);
        ByteReader r(f.body.data(), f.body.size());
        WireMeta m;
        if (decode_meta(r, m) && m.generation == epoch &&
            m.fingerprint == fp && m.shard_index == i &&
            m.num_shards == conns_.size() && m.n == core_.index().n()) {
          dirty_[i] = 0;
          continue;
        }
      } catch (const ServiceError&) {
        // Unreachable or unbootstrapped; fall through to a bootstrap try.
      }
      need.push_back(i);
    }
    if (!need.empty()) {
      const auto split =
          ShardedSensitivityIndex::split(core_.index(), conns_.size());
      std::vector<ShardHostState> states = make_host_states(*split, receipt_);
      for (const std::size_t i : need) {
        states[i].meta.generation = epoch;
        states[i].shard.generation = epoch;
        ByteWriter body;
        encode_host_state(body, states[i]);
        try {
          call_expect(*conns_[i], MsgType::kBootstrap, body, MsgType::kOk);
          dirty_[i] = 0;
          net_counter("shard_rebootstraps").inc();
        } catch (const ServiceError&) {
          // Still down; stays dirty.
        }
      }
    }
    dirty_any_.store(
        std::any_of(dirty_.begin(), dirty_.end(), [](char d) { return d != 0; }),
        std::memory_order_release);
  }

  /// Ship every shard its slice of `idx` stamped with `epoch`.  Failures
  /// mark the shard dirty instead of throwing.  Caller holds the unique
  /// lock (or is the constructor).
  void bootstrap_locked(const ShardedSensitivityIndex& idx,
                        std::uint64_t epoch) const {
    std::vector<ShardHostState> states = make_host_states(idx, receipt_);
    for (std::size_t i = 0; i < states.size(); ++i) {
      states[i].meta.generation = epoch;
      states[i].shard.generation = epoch;
      ByteWriter body;
      encode_host_state(body, states[i]);
      try {
        call_expect(*conns_[i], MsgType::kBootstrap, body, MsgType::kOk);
        dirty_[i] = 0;
      } catch (const ServiceError&) {
        dirty_[i] = 1;
        net_counter("bootstrap_failures").inc();
      }
    }
    dirty_any_.store(
        std::any_of(dirty_.begin(), dirty_.end(), [](char d) { return d != 0; }),
        std::memory_order_release);
  }

  /// The networked scatter(): broadcast one committed update's repairs.
  void ship(const ChangedSet& changed, std::uint64_t epoch) {
    const SensitivityIndex& m = core_.index();
    if (changed.full) {
      // A swap relabeled everything — re-split the relabeled monolith and
      // re-bootstrap, the same re-split scatter() performs in-process.
      const auto split = ShardedSensitivityIndex::split(m, conns_.size());
      n_.store(split->n(), std::memory_order_release);
      stride_.store(split->stride(), std::memory_order_release);
      bootstrap_locked(*split, epoch);
      return;
    }
    WirePatch p;
    p.epoch = epoch;
    p.fingerprint = m.fingerprint();
    p.num_nontree = m.num_nontree();
    p.tree_children.reserve(changed.tree_children.size());
    p.tree_infos.reserve(changed.tree_children.size());
    for (const Vertex c : changed.tree_children) {
      p.tree_children.push_back(c);
      p.tree_infos.push_back(m.tree_edge(c));
    }
    p.nontree_ids.reserve(changed.nontree_ids.size());
    p.nontree_infos.reserve(changed.nontree_ids.size());
    for (const std::int64_t id : changed.nontree_ids) {
      p.nontree_ids.push_back(id);
      p.nontree_infos.push_back(m.nontree_edge(id));
    }
    p.endpoint_keys.reserve(changed.endpoints.size());
    for (const auto& [key, ref] : changed.endpoints) {
      p.endpoint_keys.push_back(key);
      p.endpoint_is_tree.push_back(ref.is_tree ? 1 : 0);
      p.endpoint_ids.push_back(ref.id);
    }
    ByteWriter body;
    encode_patch(body, p);
    bool newly_dirty = false;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (dirty_[i]) continue;  // already owes a bootstrap; skip the patch
      try {
        call_expect(*conns_[i], MsgType::kPatch, body, MsgType::kOk);
      } catch (const ServiceError&) {
        dirty_[i] = 1;
        newly_dirty = true;
        net_counter("patch_failures").inc();
      }
    }
    if (newly_dirty) dirty_any_.store(true, std::memory_order_release);
  }

  mutable std::shared_mutex mu_;
  LiveCore core_;
  std::vector<std::shared_ptr<ShardConn>> conns_;
  CostReceipt receipt_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> n_{0};
  std::atomic<std::size_t> stride_{1};
  std::shared_ptr<Persistence> persist_;  // null: in-memory only
  std::atomic<bool> poisoned_{false};
  // Shard health: dirty_ entries flip under the unique lock (or the ctor);
  // dirty_any_ is the lock-free fast-path summary; tier_suspect_ carries a
  // reader's failure report to the next unique-lock resync.
  mutable std::vector<char> dirty_;
  mutable std::atomic<bool> dirty_any_{false};
  mutable std::atomic<bool> tier_suspect_{false};
};

}  // namespace

// --- factories ------------------------------------------------------------

std::shared_ptr<const IndexBackend> make_remote_backend(
    const std::vector<std::string>& endpoints, NetOptions opts) {
  return std::make_shared<RemoteShardBackend>(endpoints, opts);
}

std::shared_ptr<UpdatableBackend> make_leader_backend(
    mpc::Engine& eng, const graph::Instance& inst,
    const std::vector<std::string>& endpoints, NetOptions opts) {
  return std::make_shared<LeaderShardedBackend>(
      inst, SensitivityIndex::build(eng, inst), endpoints, opts);
}

}  // namespace mpcmst::service::net
