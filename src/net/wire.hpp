// The shard tier's wire protocol: length-prefixed, CRC-framed, versioned
// binary messages over a byte stream, built from the same binio primitives
// as the persistence formats (common/binio.hpp) — little-endian pinned,
// whole-frame CRC32, bounds-latched decoding.
//
//   frame    len u32 | version u8 | type u8 | body | crc32 u32
//
// `len` counts everything after itself (version + type + body + crc), so a
// reader needs exactly two reads per frame; the CRC covers version + type +
// body.  A frame that fails any check is refused as a whole — kWireError
// for truncation/corruption, kVersionMismatch for a foreign version byte —
// and never partially parsed (parse_frame, shared by the socket readers and
// the fuzz tests).
//
// Replies to state-reading RPCs carry a WireStamp (generation +
// fingerprint): the client-side merge refuses to combine per-shard replies
// whose stamps differ — the networked reading of the epoch barrier
// router.cpp enforces in-process.
//
// POD payloads whose layouts are padding-free (static_asserts below) ride
// ByteWriter::vec raw; everything with padding (Query, Answer, EdgeRef,
// JournalRecord, ...) is encoded field-by-field.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/metrics.hpp"
#include "service/journal.hpp"
#include "service/query.hpp"
#include "service/shard.hpp"
#include "service/status.hpp"
#include "service/update.hpp"

namespace mpcmst::service::net {

inline constexpr std::uint8_t kWireVersion = 1;
/// Upper bound on one frame (a bootstrap payload scales with the shard
/// slice; anything past this is a corrupt length, not a real message).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;
/// Bytes of a frame before the body: len + version + type (the trailing
/// crc32 is counted inside len).
inline constexpr std::size_t kFrameOverhead = 4 + 1 + 1 + 4;

enum class MsgType : std::uint8_t {
  kError = 0,  // body: status code u8 + message string
  kOk = 1,
  kPing = 2,
  kPong = 3,

  // Shard-server RPCs (client = QueryRouter-equivalent merge logic).
  kMeta = 10,         // -> kMetaReply{WireMeta}
  kAnswerRun = 11,    // vec<Query> -> kAnswerRunReply{per-query answers+stamp}
  kAnswerRunReply = 12,
  kTopK = 13,         // k i64 -> kTopKReply{FragileEntry prefix + stamp}
  kTopKReply = 14,
  kCertify = 15,      // vec<ResolvedChange> -> kCertifyReply{certs + stamp}
  kCertifyReply = 16,
  kFindRun = 17,      // vec<(u,v)> -> kFindRunReply{per-key refs + stamp}
  kFindRunReply = 18,
  kNontreeInfo = 19,  // orig_id -> kNontreeInfoReply{has + info + stamp}
  kNontreeInfoReply = 20,
  kMetaReply = 21,
  kBootstrap = 22,    // ShardHostState -> kOk (installs/replaces the slice)
  kPatch = 23,        // WirePatch -> kOk (applied via the shard primitives)

  // Service-server RPCs (a whole QueryService behind one endpoint).
  kQuery = 30,  // Query -> kQueryReply{Answer + stamp}
  kQueryReply = 31,
  kIngest = 32,  // vec<EdgeEvent> -> kIngestReply{vec<UpdateReceipt>}
  kIngestReply = 33,
  kStats = 34,  // -> kStatsReply{WireStats}
  kStatsReply = 35,

  // Replication stream (leader -> replica, after kSubscribe).
  kSubscribe = 40,  // last_gen u64 + have_state u8; leader takes over the conn
  kSnapshot = 41,   // one whole snapshot FILE, verbatim bytes
  kJournal = 42,    // vec<JournalRecord> in generation order

  kShutdown = 50,  // -> kOk, then the server exits its loops
};

const char* to_string(MsgType t);

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<unsigned char> body;
};

/// Frame one message: [len | version | type | body | crc].
std::vector<unsigned char> pack_frame(MsgType t, const unsigned char* body,
                                      std::size_t n);
inline std::vector<unsigned char> pack_frame(MsgType t, const ByteWriter& w) {
  return pack_frame(t, w.data().data(), w.size());
}

/// Parse one frame from `data` (framing + CRC + version checks).  Returns
/// kOk and fills `out` (and `consumed`, when given, with the frame's total
/// size); kWireError on truncation/corruption; kVersionMismatch when the
/// version byte is foreign (its CRC must still validate — a corrupt frame
/// is corrupt, not "from the future").  Never throws, never partially
/// fills `out` on refusal.
ServiceStatus parse_frame(const unsigned char* data, std::size_t size,
                          Frame& out, std::size_t* consumed = nullptr);

class Socket;  // socket.hpp

/// Frame + send one message; returns bytes written (for the tx meters).
std::size_t send_frame(Socket& s, MsgType t, const ByteWriter& body);

/// Receive one frame (two reads: len, then the rest).  Throws ServiceError
/// with the parse_frame statuses (plus the socket's kTimeout/kWireError);
/// `bytes_read`, when given, receives the frame's total wire size.
Frame recv_frame(Socket& s, std::size_t* bytes_read = nullptr);

// --- payload codecs -------------------------------------------------------
// decode_* return false (without throwing) when the reader ran dry or a
// structural invariant failed; the caller maps that to kWireError.

/// Generation + fingerprint pin of a state-reading reply.
struct WireStamp {
  std::uint64_t generation = 0;
  std::uint64_t fingerprint = 0;

  friend bool operator==(const WireStamp&, const WireStamp&) = default;
};
void encode_stamp(ByteWriter& w, const WireStamp& s);
bool decode_stamp(ByteReader& r, WireStamp& s);

void encode_error(ByteWriter& w, ServiceStatus status, const std::string& msg);
bool decode_error(ByteReader& r, ServiceStatus& status, std::string& msg);

void encode_query(ByteWriter& w, const Query& q);
bool decode_query(ByteReader& r, Query& q);

void encode_answer(ByteWriter& w, const Answer& a);
bool decode_answer(ByteReader& r, Answer& a);

void encode_edge_event(ByteWriter& w, const EdgeEvent& ev);
bool decode_edge_event(ByteReader& r, EdgeEvent& ev);

void encode_update_receipt(ByteWriter& w, const UpdateReceipt& rc);
bool decode_update_receipt(ByteReader& r, UpdateReceipt& rc);

void encode_journal_record(ByteWriter& w, const JournalRecord& rec);
bool decode_journal_record(ByteReader& r, JournalRecord& rec);

void encode_resolved_changes(ByteWriter& w,
                             const std::vector<verify::ResolvedChange>& cs);
bool decode_resolved_changes(ByteReader& r,
                             std::vector<verify::ResolvedChange>& cs);

/// Identity + shape of one shard server, returned by kMeta and carried at
/// the head of every kBootstrap.  Global fields (n, fingerprint, ...) are
/// identical across the tier; shard_index pins which slice this server
/// holds (clients validate it matches the endpoint's position).
struct WireMeta {
  std::uint64_t n = 0;
  std::uint64_t num_nontree = 0;
  std::uint64_t stride = 1;
  std::uint64_t num_shards = 1;
  std::uint64_t shard_index = 0;
  std::int64_t root = 0;
  std::uint64_t violations = 0;  // global count (is_mst == violations == 0)
  std::uint64_t fingerprint = 0;
  std::uint64_t generation = 0;
  CostReceipt receipt;
};
void encode_meta(ByteWriter& w, const WireMeta& m);
bool decode_meta(ByteReader& r, WireMeta& m);

/// kStatsReply body: the service-level snapshot a remote operator polls.
struct WireStats {
  std::uint64_t generation = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t n = 0;
  std::uint64_t num_nontree = 0;
  std::uint64_t violations = 0;
  std::uint64_t num_shards = 1;
  std::uint8_t serving = 1;  // 0: endpoint up but no backend yet
};
void encode_stats(ByteWriter& w, const WireStats& s);
bool decode_stats(ByteReader& r, WireStats& s);

/// Everything one shard server needs to serve its slice: the tier meta,
/// the IndexShard (snapshot codec — byte-identical to a slice loaded from
/// disk), and full parent/weight mirrors of the tree (O(n) words) so
/// kCertify can answer global path questions server-side.
struct ShardHostState {
  WireMeta meta;
  IndexShard shard;
  std::vector<Vertex> parent;  // full column, [0, n)
  std::vector<Weight> tree_w;  // full column, [0, n)
};
void encode_host_state(ByteWriter& w, const ShardHostState& st);
bool decode_host_state(ByteReader& r, ShardHostState& st);

/// One committed update's label repairs, broadcast to every shard server —
/// the networked form of one scatter() step.  Receivers apply their own
/// slice through the same shard patch primitives (shard.hpp) the in-process
/// backend uses: tree infos are broadcast whole (every server refreshes its
/// weight mirror; only the owner patches labels), non-tree entries carry
/// the info so each server derives ownership from min(u, v), endpoint
/// entries are applied by the server owning key >> 32.  Full relabels
/// (swaps, vertex attach) never ship as patches — the leader re-bootstraps.
struct WirePatch {
  std::uint64_t epoch = 0;            // generation after this update
  std::uint64_t fingerprint = 0;      // ... and the fingerprint
  std::uint64_t num_nontree = 0;      // post-update global count
  std::vector<Vertex> tree_children;  // parallel to tree_infos
  std::vector<TreeEdgeInfo> tree_infos;
  std::vector<std::int64_t> nontree_ids;  // parallel to nontree_infos
  std::vector<NonTreeEdgeInfo> nontree_infos;
  std::vector<std::uint64_t> endpoint_keys;  // parallel to the two below
  std::vector<std::uint8_t> endpoint_is_tree;
  std::vector<std::int64_t> endpoint_ids;  // is_tree==0 && id<0: erase key
};
void encode_patch(ByteWriter& w, const WirePatch& p);
bool decode_patch(ByteReader& r, WirePatch& p);

// Raw-vector safety: these ride ByteWriter::vec as bulk bytes, so their
// layouts must be padding-free (they are all-int64 records).
static_assert(sizeof(PriceChange) == 3 * sizeof(std::int64_t));
static_assert(sizeof(FragileEntry) == 5 * sizeof(std::int64_t));
static_assert(sizeof(TreeEdgeInfo) == 5 * sizeof(std::int64_t));
static_assert(sizeof(NonTreeEdgeInfo) == 5 * sizeof(std::int64_t));
static_assert(sizeof(verify::ViolationCert) == 5 * sizeof(std::int64_t));

// --- telemetry ------------------------------------------------------------

/// Per-RPC meters in the process-wide registry, labeled by request type:
/// net_rpc_latency_ns{rpc="..."}, net_rpc_bytes_tx/rx{rpc="..."},
/// net_rpc_calls{rpc="..."}.  References are registry-owned and stable.
struct RpcMetrics {
  Histogram* latency = nullptr;
  Counter* calls = nullptr;
  Counter* bytes_tx = nullptr;
  Counter* bytes_rx = nullptr;
};
RpcMetrics& rpc_metrics(MsgType request_type);

/// Tier-level counters: "reconnects", "timeouts", "wire_errors",
/// "epoch_retries", "journal_records_shipped", "snapshots_shipped".
Counter& net_counter(const std::string& name);

}  // namespace mpcmst::service::net
