#include "net/replicate.hpp"

#include <poll.h>

#include <cerrno>
#include <chrono>
#include <fstream>
#include <utility>

#include "common/check.hpp"
#include "service/snapshot.hpp"

namespace mpcmst::service::net {

namespace {

/// Readability poll so a blocking subscription stream can still notice the
/// stop flag without consuming partial frames.  1: readable, 0: timeout,
/// -1: the socket is dead.
int wait_readable(const Socket& s, int timeout_ms) {
  pollfd p{};
  p.fd = s.fd();
  p.events = POLLIN;
  const int r = ::poll(&p, 1, timeout_ms);
  if (r < 0) return errno == EINTR ? 0 : -1;
  if (r == 0) return 0;
  if (p.revents & (POLLERR | POLLNVAL)) return -1;
  return 1;
}

std::vector<unsigned char> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size <= 0) return {};
  std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return in ? bytes : std::vector<unsigned char>{};
}

}  // namespace

// --- ReplicationHub -------------------------------------------------------

ReplicationHub::ReplicationHub(std::string persist_dir)
    : dir_(std::move(persist_dir)) {}

ReplicationHub::~ReplicationHub() { close_all(); }

std::size_t ReplicationHub::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subs_.size();
}

void ReplicationHub::close_all() {
  std::lock_guard lock(mu_);
  subs_.clear();
}

void ReplicationHub::publish(const std::vector<JournalRecord>& recs) {
  if (recs.empty()) return;
  ByteWriter body;
  body.u64(recs.size());
  for (const JournalRecord& rec : recs) encode_journal_record(body, rec);
  std::lock_guard lock(mu_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    try {
      send_frame(*it, MsgType::kJournal, body);
      net_counter("journal_records_shipped").inc(recs.size());
      ++it;
    } catch (const ServiceError&) {
      net_counter("replica_drops").inc();
      it = subs_.erase(it);
    }
  }
}

void ReplicationHub::subscribe(Socket s, std::uint64_t last_gen,
                               bool have_state) {
  // Serialized against publish(), so the catch-up read of the journal file
  // plus the registration happen with no live frame in between; a batch
  // committed while we waited for the lock is both in the file and in a
  // pending publish — the replica deduplicates on generation.
  std::lock_guard lock(mu_);
  try {
    const Journal::Scan scan = Journal::scan(journal_path(dir_));
    // Can the journal tail alone bridge from the replica's generation?
    bool bridge = have_state;
    if (bridge) {
      if (scan.records.empty()) {
        const auto snap_gen = newest_snapshot_generation(dir_);
        bridge = snap_gen.has_value() && last_gen >= *snap_gen;
      } else {
        bridge = scan.records.front().generation <= last_gen + 1 ||
                 last_gen >= scan.records.back().generation;
      }
    }
    std::uint64_t base = last_gen;
    if (!bridge) {
      // Ship the newest snapshot file that validates, verbatim.
      std::vector<unsigned char> bytes;
      std::uint64_t snap_gen = 0;
      for (const std::string& path : list_snapshot_files(dir_)) {
        std::vector<unsigned char> b = read_file_bytes(path);
        if (b.empty()) continue;
        const auto img = parse_snapshot_bytes(b.data(), b.size());
        if (!img) continue;
        bytes = std::move(b);
        snap_gen = img->generation;
        break;
      }
      if (bytes.empty())
        throw ServiceError(ServiceStatus::kUnavailable,
                           "no valid snapshot in " + dir_ +
                               " to bootstrap a replica from");
      ByteWriter snap;
      snap.bytes(bytes.data(), bytes.size());
      send_frame(s, MsgType::kSnapshot, snap);
      net_counter("snapshots_shipped").inc();
      base = snap_gen;
    }
    std::vector<JournalRecord> tail;
    for (const JournalRecord& rec : scan.records)
      if (rec.generation > base) tail.push_back(rec);
    if (!tail.empty()) {
      ByteWriter body;
      body.u64(tail.size());
      for (const JournalRecord& rec : tail) encode_journal_record(body, rec);
      send_frame(s, MsgType::kJournal, body);
      net_counter("journal_records_shipped").inc(tail.size());
    }
    subs_.push_back(std::move(s));
  } catch (const ServiceError&) {
    net_counter("replica_drops").inc();
    // Socket destructs closed; the replica re-dials.
  }
}

// --- ReplicaNode ----------------------------------------------------------

ReplicaNode::ReplicaNode(std::string leader_endpoint, NetOptions opts,
                         ServiceOptions svc_opts)
    : leader_(std::move(leader_endpoint)), opts_(opts), svc_opts_(svc_opts) {}

ReplicaNode::~ReplicaNode() { stop(); }

void ReplicaNode::start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void ReplicaNode::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

std::shared_ptr<QueryService> ReplicaNode::service() const {
  std::lock_guard lock(mu_);
  return svc_;
}

void ReplicaNode::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    try {
      Socket s = dial(leader_, opts_);
      ByteWriter body;
      body.u64(applied_.load(std::memory_order_acquire));
      body.u8(have_state_.load(std::memory_order_acquire) ? 1 : 0);
      send_frame(s, MsgType::kSubscribe, body);
      const Frame ack = recv_frame(s);
      if (ack.type == MsgType::kError) {
        ServiceStatus status = ServiceStatus::kWireError;
        std::string msg;
        ByteReader r(ack.body.data(), ack.body.size());
        if (!decode_error(r, status, msg)) msg = "malformed error reply";
        throw ServiceError(status, leader_ + ": " + msg);
      }
      if (ack.type != MsgType::kOk)
        throw ServiceError(ServiceStatus::kWireError,
                           leader_ + ": unexpected subscribe ack");
      connected_.store(true, std::memory_order_release);
      // The stream waits indefinitely between frames; readability is polled
      // so stop() stays responsive and no partial frame is ever consumed.
      s.set_io_timeout(0);
      bool resubscribe = false;
      while (!stop_.load(std::memory_order_acquire) && !resubscribe) {
        const int r = wait_readable(s, 100);
        if (r < 0)
          throw ServiceError(ServiceStatus::kWireError,
                             leader_ + ": subscription stream closed");
        if (r == 0) continue;
        const Frame f = recv_frame(s);
        if (f.type == MsgType::kSnapshot) {
          install_snapshot(f);
        } else if (f.type == MsgType::kJournal) {
          if (!apply_journal(f)) resubscribe = true;  // gap: re-request
        } else {
          throw ServiceError(ServiceStatus::kWireError,
                             leader_ + ": unexpected " +
                                 std::string(to_string(f.type)) +
                                 " on the subscription stream");
        }
      }
    } catch (const ServiceError&) {
      // Transport fault (leader death included): keep serving the last
      // contiguous generation, re-dial with it after a backoff.
    } catch (const ModelError&) {
      // Replay diverged from what the journal promised — this state cannot
      // be trusted; drop it and resync from a fresh snapshot.
      std::lock_guard lock(mu_);
      svc_ = nullptr;
      backend_ = nullptr;
      have_state_.store(false, std::memory_order_release);
      applied_.store(0, std::memory_order_release);
    }
    connected_.store(false, std::memory_order_release);
    if (stop_.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        opts_.reconnect_backoff_ms > 0 ? opts_.reconnect_backoff_ms : 50));
  }
  connected_.store(false, std::memory_order_release);
}

void ReplicaNode::install_snapshot(const Frame& f) {
  // body = the snapshot file, verbatim; the snapshot's own CRC + fingerprint
  // validation is the trust boundary.
  const auto img = parse_snapshot_bytes(f.body.data(), f.body.size());
  if (!img)
    throw ServiceError(ServiceStatus::kWireError,
                       leader_ + ": shipped snapshot failed validation");
  std::shared_ptr<UpdatableBackend> b;
  if (img->sharded())
    b = std::make_shared<LiveShardedBackend>(std::move(img->instance),
                                             img->index, img->shards,
                                             img->generation);
  else
    b = std::make_shared<LiveMonolithBackend>(std::move(img->instance),
                                              img->index, img->generation);
  auto svc = std::make_shared<QueryService>(b, svc_opts_);
  {
    std::lock_guard lock(mu_);
    backend_ = std::move(b);
    svc_ = std::move(svc);
  }
  applied_.store(img->generation, std::memory_order_release);
  have_state_.store(true, std::memory_order_release);
  net_counter("snapshots_installed").inc();
}

bool ReplicaNode::apply_journal(const Frame& f) {
  ByteReader r(f.body.data(), f.body.size());
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    JournalRecord rec;
    if (!decode_journal_record(r, rec) || !r.ok())
      throw ServiceError(ServiceStatus::kWireError,
                         leader_ + ": truncated journal frame");
    if (!have_state_.load(std::memory_order_acquire)) return false;
    const std::uint64_t applied = applied_.load(std::memory_order_acquire);
    if (rec.generation <= applied) continue;  // duplicate of the catch-up
    if (rec.generation != applied + 1) {
      net_counter("journal_gaps").inc();
      return false;  // resubscribe from applied_generation()
    }
    // Contiguity held here; the fingerprint chain and the promised
    // classification/generation are enforced inside (ModelError on drift).
    replay_journal_record(*backend_, rec);
    applied_.store(rec.generation, std::memory_order_release);
  }
  return true;
}

}  // namespace mpcmst::service::net
