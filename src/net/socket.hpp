// Blocking socket primitives for the networked shard tier: endpoint
// parsing ("host:port" or "unix:/path"), a move-only fd wrapper with
// whole-buffer send/recv and SO_SNDTIMEO/SO_RCVTIMEO deadlines, a dialer
// with a connect timeout, and a Listener whose accept loop can be stopped.
//
// Every failure surfaces as ServiceError with the transport statuses of
// status.hpp (kWireError for socket faults and peer closes, kTimeout for
// missed deadlines, kInvalidRequest for unparseable endpoints), so callers
// switch on status() instead of inspecting errno — and the wire layer
// (wire.hpp) can frame the same codes back to remote peers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "service/status.hpp"

namespace mpcmst::service::net {

/// Transport knobs shared by every dialer/server in the tier.
struct NetOptions {
  int connect_timeout_ms = 5000;
  /// Per-recv/send deadline; 0 = block forever (replica subscription
  /// streams wait indefinitely for the next journal frame).
  int io_timeout_ms = 10000;
  /// Reconnect-and-retry attempts a client makes per RPC after a transport
  /// fault (the peer may have restarted with its own state).
  int reconnect_attempts = 1;
  int reconnect_backoff_ms = 50;
};

/// A parsed endpoint spec: "host:port" (TCP) or "unix:/path" (AF_UNIX).
struct Endpoint {
  bool is_unix = false;
  std::string host;  // or the socket path when is_unix
  std::uint16_t port = 0;
};

/// Throws ServiceError(kInvalidRequest) on anything unparseable.
Endpoint parse_endpoint(const std::string& spec);

/// Move-only connected-socket handle.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Apply `io_timeout_ms` (0 = no deadline) to both directions.
  void set_io_timeout(int ms);

  /// Write exactly `n` bytes (retrying short writes / EINTR).  Throws
  /// ServiceError: kTimeout on a missed deadline, kWireError otherwise.
  void send_all(const void* p, std::size_t n);

  /// Read exactly `n` bytes; a peer close mid-read is kWireError.
  void recv_all(void* p, std::size_t n);

 private:
  int fd_ = -1;
};

/// Connect to `spec` within opts.connect_timeout_ms; the returned socket
/// carries opts.io_timeout_ms deadlines.
Socket dial(const std::string& spec, const NetOptions& opts);

/// Bound+listening server socket.  TCP specs may use port 0; endpoint()
/// reports the actual bound address ("127.0.0.1:49212") for clients.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Listener bind(const std::string& spec);

  bool valid() const { return fd_ >= 0; }
  const std::string& endpoint() const { return endpoint_; }

  /// Accept one connection, polling `stop` every ~50ms; returns an invalid
  /// Socket once `stop` is set (or the listener was closed).
  Socket accept(const std::atomic<bool>& stop);

  void close();

 private:
  int fd_ = -1;
  std::string endpoint_;
  std::string unix_path_;  // unlinked on close
};

}  // namespace mpcmst::service::net
