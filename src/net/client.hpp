// Client half of the networked shard tier.
//
// ShardConn is one lazily-dialed, mutex-guarded connection to a shard
// server, with reconnect-and-retry on transport faults and per-RPC
// latency/bytes meters.  On top of it client.cpp implements the two
// IndexBackend faces of the tier:
//
//   - RemoteShardBackend (make_remote_backend): read-only attach to a set
//     of already-running shard servers.  It mirrors QueryRouter's merges
//     over RPC — point queries run the same two-probe resolution the
//     in-process resolve() does (first shard_of(u), then shard_of(v)),
//     top-k is a k-way merge of per-shard sorted prefixes, still_mst
//     resolves the batch remotely and merges per-shard certificate rosters.
//     Every multi-RPC operation checks that all reply stamps agree and
//     retries (refreshing metas) before surfacing kEpochRetry.
//
//   - LeaderShardedBackend (make_leader_backend): the UpdatableBackend that
//     owns the tier.  It holds the same LiveCore the in-process backends
//     use; ingest() applies each event locally, ships the resulting labels
//     to the owning shard servers as one kPatch per event (a full relabel
//     re-splits and re-bootstraps), group-commits the journal, then
//     publishes the generation — the same commit path as
//     LiveShardedBackend, with scatter() swapped for RPCs.  Queries fan out
//     to the shard servers under the reader lock and must come back stamped
//     with the leader's own epoch; a shard that lost its state (restart) is
//     detected by the stamp mismatch and re-bootstrapped on the spot.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/update.hpp"

namespace mpcmst::graph {
struct Instance;
}
namespace mpcmst::mpc {
class Engine;
}

namespace mpcmst::service::net {

/// One connection to a peer, serialized by an internal mutex (callers may
/// share a ShardConn across threads).  call() dials lazily, retries
/// transport faults up to opts.reconnect_attempts times (reconnecting with
/// backoff), decodes kError replies into thrown ServiceError, and feeds the
/// per-RPC meters.  Transport-level retry resends the request, so callers
/// of non-idempotent RPCs should pass reconnect_attempts = 0; every RPC in
/// this tier (queries, patches, bootstraps) is idempotent.
class ShardConn {
 public:
  ShardConn(std::string endpoint, NetOptions opts);

  const std::string& endpoint() const { return endpoint_; }

  /// One request/reply exchange.  Throws ServiceError: the decoded status
  /// of a kError reply, or kTimeout/kWireError after retries ran out.
  Frame call(MsgType t, const ByteWriter& body);

  /// Drop the cached connection (next call re-dials).
  void invalidate();

 private:
  std::mutex mu_;
  const std::string endpoint_;
  const NetOptions opts_;
  Socket sock_;
};

/// Read-only attach to a running shard tier; one endpoint per shard, in
/// shard order.  Fetches and cross-validates every shard's kMeta before
/// returning.  Throws ServiceError when the tier is unreachable or the
/// metas are inconsistent with each other or with the endpoint list.
///
/// Freshness: fingerprint()/generation() report the newest epoch this
/// attach has *observed* — every wire round-trip (any cache miss) advances
/// them, but a QueryService cache hit does not touch the wire, so answers
/// cached before a remote update remain servable until the next miss
/// observes the new stamp.  The leader's own service never has this window
/// (its epoch advances synchronously with ingest); read-only attaches that
/// need per-query freshness should serve with cache_capacity = 0.
std::shared_ptr<const IndexBackend> make_remote_backend(
    const std::vector<std::string>& endpoints, NetOptions opts = {});

/// Build the index here (one distributed run), bootstrap the shard servers
/// with their slices, and return the UpdatableBackend that drives them with
/// per-update patches.  Requires endpoints.size() <= max(1, n) (the same
/// shard-count policy clamp_shard_count enforces in-process).
std::shared_ptr<UpdatableBackend> make_leader_backend(
    mpc::Engine& eng, const graph::Instance& inst,
    const std::vector<std::string>& endpoints, NetOptions opts = {});

}  // namespace mpcmst::service::net
