// E8 (§1 narrative): the paper's O(log D_T) verifier vs the O(log n)
// PRAM-simulation baseline.
//
// Both implementations carry constants (every O(1)-round primitive is a
// handful of actual rounds), so at a fixed n the paper's algorithm wins only
// below some diameter threshold D*(n).  The asymptotic content of the claim
// is that D*(n) grows with n: the PRAM baseline pays for log n forever, the
// paper's algorithm never pays more than log D_T.  Table E8a fixes n and
// sweeps D_T (verdict agreement included); table E8b fixes shallow shapes
// and grows n, showing the pram/paper advantage widening — the crossover
// moving right.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "verify/baselines.hpp"
#include "verify/verifier.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;
namespace vf = mpcmst::verify;

namespace {

struct Rounds {
  std::size_t paper = 0, pram = 0;
  bool agree = true;
};

Rounds measure(const g::Instance& inst) {
  Rounds r;
  auto eng_paper = bu::scaled_engine(inst);
  const auto paper = vf::verify_mst_mpc(eng_paper, inst);
  auto eng_pram = bu::scaled_engine(inst, 0.5, 0.0);  // needs n log n words
  const auto pram = vf::pram_verifier(eng_pram, inst);
  r.paper = eng_paper.rounds();
  r.pram = eng_pram.rounds();
  r.agree = paper.is_mst == pram.is_mst;
  return r;
}

void run_tables() {
  {
    const std::size_t n = 1 << 14;
    mpcmst::Table table({"tree", "height", "paper rounds", "pram rounds",
                         "pram/paper", "agree"});
    for (auto& pt : bu::diameter_sweep(n)) {
      const auto inst = g::make_layered_instance(pt.tree, 2 * n, 23);
      const Rounds r = measure(inst);
      table.row(pt.name, pt.height, r.paper, r.pram,
                static_cast<double>(r.pram) / static_cast<double>(r.paper),
                r.agree ? "yes" : "NO");
    }
    table.print(std::cout,
                "E8a  fixed n = 16384: paper O(log D_T) vs PRAM-simulation "
                "O(log n)");
    std::cout << "pram/paper > 1 below the crossover diameter, < 1 above "
                 "it.\n\n";
  }
  {
    mpcmst::Table table({"n", "star pram/paper", "kary8 pram/paper",
                         "binary pram/paper"});
    for (std::size_t n : {1u << 11, 1u << 13, 1u << 15, 1u << 17}) {
      const Rounds star =
          measure(g::make_layered_instance(g::star_tree(n), 2 * n, 23));
      const Rounds k8 =
          measure(g::make_layered_instance(g::kary_tree(n, 8), 2 * n, 23));
      const Rounds bin =
          measure(g::make_layered_instance(g::kary_tree(n, 2), 2 * n, 23));
      table.row(n,
                static_cast<double>(star.pram) /
                    static_cast<double>(star.paper),
                static_cast<double>(k8.pram) / static_cast<double>(k8.paper),
                static_cast<double>(bin.pram) /
                    static_cast<double>(bin.paper));
    }
    table.print(std::cout,
                "E8b  shallow trees, growing n: the paper's advantage "
                "widens (crossover D*(n) moves right)");
    std::cout << "star rounds are n-independent for the paper's algorithm; "
                 "the PRAM baseline keeps paying log n.\n\n";
  }
}

void BM_PramVerifier(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = g::make_layered_instance(g::star_tree(n), 2 * n, 23);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst, 0.5, 0.0);
    benchmark::DoNotOptimize(vf::pram_verifier(eng, inst).is_mst);
  }
}
BENCHMARK(BM_PramVerifier)->Arg(1 << 13)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
