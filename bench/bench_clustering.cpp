// E5 (Lemma 2.8 + Observation 2.10, the paper's Figure 1 made quantitative):
// each contraction step removes a constant fraction of clusters, so
// O(log D̂) steps reach n / D̂² clusters; the total number of clusters across
// all levels (the merge history) stays O(n).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "cluster/clustering.hpp"
#include "treeops/interval_label.hpp"

namespace bu = mpcmst::benchutil;
namespace cl = mpcmst::cluster;
namespace g = mpcmst::graph;
namespace to = mpcmst::treeops;

namespace {

constexpr std::size_t kN = 1 << 15;

void run_tables() {
  {
    mpcmst::Table table({"tree", "height", "target n/Dhat^2", "steps",
                         "steps/log2(Dhat)", "worst step ratio",
                         "mean step ratio", "history/n"});
    for (auto& pt : bu::diameter_sweep(kN)) {
      g::Instance inst;
      inst.tree = pt.tree;
      auto eng = bu::scaled_engine(inst, 0.5, 0.0);
      const auto dtree = to::load_tree(eng, pt.tree);
      const auto depths = to::compute_depths(dtree, pt.tree.root);
      const auto labels =
          to::dfs_interval_labels(dtree, pt.tree.root, depths);
      cl::HierarchicalClustering hc(dtree, pt.tree.root, labels.intervals);
      const std::int64_t dhat = 2 * std::max<std::int64_t>(pt.height, 1);
      const auto target = static_cast<std::size_t>(
          static_cast<double>(kN) /
          (static_cast<double>(dhat) * static_cast<double>(dhat)));
      const std::size_t steps = hc.run_until(
          target, [](std::int64_t l, const cl::MergeRec&) { return l; });
      double worst = 0, mean = 0;
      const auto& decay = hc.decay();
      for (std::size_t i = 1; i < decay.size(); ++i) {
        const double r = static_cast<double>(decay[i]) /
                         static_cast<double>(decay[i - 1]);
        worst = std::max(worst, r);
        mean += r;
      }
      mean /= static_cast<double>(decay.size() - 1);
      std::size_t history = 0;
      for (const auto& h : hc.history()) history += h.size();
      table.row(pt.name, pt.height, std::max<std::size_t>(target, 1), steps,
                static_cast<double>(steps) / bu::log2d(dhat), worst, mean,
                static_cast<double>(history) / static_cast<double>(kN));
    }
    table.print(std::cout,
                "E5a  contraction decay per shape (n = 32768): worst/mean "
                "per-step cluster ratio < 1, steps = O(log Dhat), history "
                "O(n)");
    std::cout << "\n";
  }
  {
    // Full decay trace on the hardest shape (the path): Figure-1 style.
    g::Instance inst;
    inst.tree = g::path_tree(kN);
    auto eng = bu::scaled_engine(inst, 0.5, 0.0);
    const auto dtree = to::load_tree(eng, inst.tree);
    const auto labels = to::dfs_interval_labels(dtree, inst.tree.root);
    cl::HierarchicalClustering hc(dtree, inst.tree.root, labels.intervals);
    hc.run_until(1, [](std::int64_t l, const cl::MergeRec&) { return l; });
    mpcmst::Table table({"step", "clusters", "ratio vs prev"});
    const auto& decay = hc.decay();
    for (std::size_t i = 0; i < decay.size(); i += (decay.size() / 16) + 1)
      table.row(i, decay[i],
                i == 0 ? 1.0
                       : static_cast<double>(decay[i]) /
                             static_cast<double>(decay[i - 1]));
    table.row(decay.size() - 1, decay.back(), 0.0);
    table.print(std::cout,
                "E5b  decay trace, path tree n = 32768 (full contraction)");
    std::cout << "\n";
  }
}

void BM_ContractionStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  g::Instance inst;
  inst.tree = g::path_tree(n);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst, 0.5, 0.0);
    const auto dtree = to::load_tree(eng, inst.tree);
    const auto labels = to::dfs_interval_labels(dtree, inst.tree.root);
    cl::HierarchicalClustering hc(dtree, inst.tree.root, labels.intervals);
    benchmark::DoNotOptimize(hc.step());
  }
}
BENCHMARK(BM_ContractionStep)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
