// E7 (Definition 4.5 / Lemma 4.6 / Claim 4.13, the paper's Figure 2 made
// quantitative): how often the sensitivity contraction cases fire, and the
// root-to-leaf note volume — created notes and the peak live pool, which
// Claim 4.13 bounds by O(n).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "sensitivity/sensitivity.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;
namespace sn = mpcmst::sensitivity;

namespace {

constexpr std::size_t kN = 1 << 14;

void run_table() {
  mpcmst::Table table({"tree", "height", "case1(drop)", "case4(lo-trunc)",
                       "case5(hi-trunc)", "notes-created", "notes-peak",
                       "notes-peak/n"});
  for (auto& pt : bu::diameter_sweep(kN)) {
    const auto inst = g::make_layered_instance(pt.tree, 2 * kN, 19);
    auto eng = bu::scaled_engine(inst);
    const auto res = sn::mst_sensitivity_mpc(eng, inst);
    table.row(pt.name, pt.height, res.stats.case1, res.stats.case4,
              res.stats.case5, res.stats.notes_created, res.stats.notes_peak,
              static_cast<double>(res.stats.notes_peak) /
                  static_cast<double>(inst.n()));
  }
  table.print(std::cout,
              "E7  Definition 4.5 case frequencies and note accounting "
              "(n = 16384, m = 3n)");
  std::cout << "notes-peak/n bounded by a constant across shapes "
               "(Claim 4.13).\n\n";
}

void BM_SensitivityNotes(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = g::make_layered_instance(
      g::random_tree_depth_bounded(n, 256, 3), 2 * n, 19);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst);
    benchmark::DoNotOptimize(
        sn::mst_sensitivity_mpc(eng, inst).stats.notes_created);
  }
}
BENCHMARK(BM_SensitivityNotes)->Arg(1 << 13)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
