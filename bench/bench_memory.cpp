// E4 (§1.2 / §3 intro): global-memory utilization.  The paper's verifier
// stays at O(m + n) words across the diameter sweep; the naive root-path
// strawman blows up as O(n * D_T), binary lifting as O(n log D_T), and the
// PRAM simulation as O(n log n).  Reported as peak-words / input-words.
#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "verify/baselines.hpp"
#include "verify/verifier.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;
namespace vf = mpcmst::verify;

namespace {

constexpr std::size_t kN = 1 << 13;  // naive needs n * D_T words: keep modest

double peak_ratio(const g::Instance& inst,
                  const std::function<vf::VerifyResult(mpcmst::mpc::Engine&,
                                                       const g::Instance&)>& f) {
  // No global budget and roomy machines: the point is to *measure* the
  // blowup of each variant, not to crash on it.
  mpcmst::mpc::MpcConfig cfg;
  cfg.machines = 256;
  cfg.local_capacity = std::size_t{1} << 28;
  cfg.block_slack = 16.0;
  auto eng = mpcmst::mpc::Engine(cfg);
  const auto res = f(eng, inst);
  if (!res.verdicts.empty() && !res.is_mst)
    std::cerr << "unexpected verdict\n";
  return static_cast<double>(eng.stats().peak_global_words) /
         static_cast<double>(inst.input_words());
}

void run_table() {
  mpcmst::Table table({"tree", "height", "paper(Thm3.1)", "naive(n*D)",
                       "lifting(n*logD)", "pram(n*logn)"});
  for (auto& pt : bu::diameter_sweep(kN)) {
    const auto inst = g::make_layered_instance(pt.tree, 2 * kN, 13);
    table.row(
        pt.name, pt.height,
        peak_ratio(inst,
                   [](auto& e, const auto& i) {
                     return vf::verify_mst_mpc(e, i);
                   }),
        peak_ratio(inst,
                   [](auto& e, const auto& i) {
                     return vf::naive_verifier(e, i);
                   }),
        peak_ratio(inst,
                   [](auto& e, const auto& i) {
                     return vf::lifting_verifier(e, i);
                   }),
        peak_ratio(inst, [](auto& e, const auto& i) {
          return vf::pram_verifier(e, i);
        }));
  }
  table.print(std::cout,
              "E4  peak global memory / input words, verification variants "
              "(n = 8192, m = 3n)");
  std::cout << "paper column stays flat (optimal utilization); naive grows "
               "linearly with D_T.\n\n";
}

void BM_PaperVerifier(benchmark::State& state) {
  const auto inst = g::make_layered_instance(
      g::path_tree(static_cast<std::size_t>(state.range(0))), 2 * state.range(0),
      13);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst);
    benchmark::DoNotOptimize(vf::verify_mst_mpc(eng, inst).is_mst);
  }
}
BENCHMARK(BM_PaperVerifier)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
