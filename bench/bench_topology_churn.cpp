// Topology-churn throughput: raw EdgeEvent streams (inserts, deletes,
// vertex attaches, reweights) absorbed per second by a persistent live
// backend — batched through ingest() (one group-committed journal append +
// fsync per chunk) and one-at-a-time through the per-event entry points
// (one fsync per event) — against the full-rebuild-per-change baseline.
// The bench asserts fingerprint parity with the canonical instance
// transform after each stream, so a fast-but-wrong path cannot win.
// Emits the table to stdout and BENCH_topology_churn.json for the
// regression gate (check_regression.py: ingest_events_per_s).
//
//   $ ./bench_topology_churn [n] [out.json] [shards]
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "graph/generators.hpp"
#include "service/snapshot.hpp"
#include "service/update.hpp"

using namespace mpcmst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool is_tree_key(const graph::Instance& inst, graph::Vertex u,
                 graph::Vertex v) {
  for (const graph::Vertex c : {u, v}) {
    const graph::Vertex other = (c == u) ? v : u;
    if (c != inst.tree.root &&
        inst.tree.parent[static_cast<std::size_t>(c)] == other)
      return true;
  }
  return false;
}

struct StreamStats {
  std::size_t reweights = 0;
  std::size_t swaps = 0;
  std::size_t inserts = 0;
  std::size_t insert_swaps = 0;
  std::size_t attaches = 0;
  std::size_t deletes = 0;
};

/// Generate `count` effective events against the evolving instance `sim`
/// (mutated by the canonical transform as the stream is built, so every
/// event targets the topology it will actually meet).  `live` tracks the
/// non-tombstoned non-tree slots across the stream.  Deletes only target
/// edges whose key no tree edge shadows (a tree delete can refuse), so
/// every emitted event advances the epoch.
std::vector<service::EdgeEvent> make_stream(graph::Instance& sim,
                                            std::vector<std::int64_t>& live,
                                            std::size_t count,
                                            std::uint64_t seed,
                                            graph::Vertex max_n,
                                            StreamStats& stats) {
  std::mt19937_64 rng(seed);
  std::vector<service::EdgeEvent> out;
  out.reserve(count);
  const auto price = [&] {
    return 1 + static_cast<graph::Weight>(rng() % 1000000);
  };
  while (out.size() < count) {
    const auto n = static_cast<graph::Vertex>(sim.n());
    const std::uint64_t roll = rng() % 20;
    service::EdgeEvent ev;
    if (roll < 8) {  // reweight a tree or live non-tree edge
      if (rng() % 2 == 0 || live.empty()) {
        graph::Vertex c;
        do {
          c = static_cast<graph::Vertex>(rng() % sim.n());
        } while (c == sim.tree.root);
        ev = {service::UpdateOp::kReweight, c,
              sim.tree.parent[static_cast<std::size_t>(c)], price()};
      } else {
        const graph::WEdge& e =
            sim.nontree[static_cast<std::size_t>(live[rng() % live.size()])];
        ev = {service::UpdateOp::kReweight, e.u, e.v, price()};
      }
    } else if (roll < 13) {  // insert a random pair
      auto u = static_cast<graph::Vertex>(rng() % sim.n());
      auto v = static_cast<graph::Vertex>(rng() % sim.n());
      if (u == v) v = (v + 1) % n;
      ev = {service::UpdateOp::kAddEdge, u, v, price()};
    } else if (roll < 14 && !live.empty()) {  // duplicate-key insert
      const graph::WEdge& e =
          sim.nontree[static_cast<std::size_t>(live[rng() % live.size()])];
      ev = {service::UpdateOp::kAddEdge, e.u, e.v, price()};
    } else if (roll < 15 && n < max_n) {  // attach a fresh leaf vertex
      ev = {service::UpdateOp::kAddEdge, n,
            static_cast<graph::Vertex>(rng() % sim.n()), price()};
    } else {  // delete a non-shadowed live non-tree edge
      if (live.empty()) continue;
      const std::size_t start = rng() % live.size();
      bool found = false;
      for (std::size_t probe = 0; probe < live.size() && !found; ++probe) {
        const graph::WEdge& e = sim.nontree[static_cast<std::size_t>(
            live[(start + probe) % live.size()])];
        if (!is_tree_key(sim, e.u, e.v)) {
          ev = {service::UpdateOp::kRemoveEdge, e.u, e.v, 0};
          found = true;
        }
      }
      if (!found) continue;
    }

    const auto rep = service::apply_event_to_instance(sim, ev);
    if (rep.status != service::Status::kOk ||
        rep.cls == service::UpdateClass::kNoChange)
      continue;
    switch (rep.cls) {
      case service::UpdateClass::kTreeReweight:
      case service::UpdateClass::kNonTreeReweight:
        ++stats.reweights;
        break;
      case service::UpdateClass::kTreeSwap:
      case service::UpdateClass::kNonTreeSwap:
        ++stats.swaps;
        break;
      case service::UpdateClass::kNonTreeInsert:
        live.push_back(rep.edge.id);
        ++stats.inserts;
        break;
      case service::UpdateClass::kInsertSwap:
        // The allocated slot holds the displaced tree edge: still live.
        live.push_back(rep.edge.id);
        ++stats.insert_swaps;
        break;
      case service::UpdateClass::kVertexAttach:
        ++stats.attaches;
        break;
      case service::UpdateClass::kNonTreeDelete: {
        const auto it = std::find(live.begin(), live.end(), rep.edge.id);
        if (it != live.end()) {
          *it = live.back();
          live.pop_back();
        }
        ++stats.deletes;
        break;
      }
      default:
        break;
    }
    out.push_back(ev);
  }
  return out;
}

void require_parity(const service::UpdatableBackend& backend,
                    const graph::Instance& sim, const char* where) {
  const std::uint64_t want = service::SensitivityIndex::fingerprint_of(sim);
  if (backend.fingerprint() != want) {
    std::cerr << "FAIL: " << where
              << ": backend fingerprint diverged from the canonical "
                 "transform\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 20000;
  const std::string out_path =
      argc > 2 ? argv[2] : "BENCH_topology_churn.json";
  const std::size_t shards = argc > 3 ? std::stoul(argv[3]) : 1;

  auto tree = graph::random_recursive_tree(n, 2033);
  const auto inst = graph::make_layered_instance(std::move(tree), 3 * n, 2037);

  // --- the one-time distributed build, behind the live layer ---
  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto t_build = Clock::now();
  std::shared_ptr<service::UpdatableBackend> backend;
  if (shards > 1)
    backend = service::LiveShardedBackend::build(eng, inst, shards);
  else
    backend = service::LiveMonolithBackend::build(eng, inst);
  const double build_wall = seconds_since(t_build);

  // Persistent tier: ingest pays one fsync per chunk, the per-event path
  // pays one per event — the group-commit gain is the point of the bench.
  const auto state_dir =
      (std::filesystem::temp_directory_path() / "mpcmst_bench_churn").string();
  std::filesystem::remove_all(state_dir);
  service::PersistenceConfig cfg{state_dir, service::SyncMode::kCommit,
                                 /*snapshot_every_n=*/0};
  backend->attach_persistence(service::Persistence::create_fresh(cfg));
  backend->checkpoint();

  // --- baseline: what a snapshot service pays per confirmed change ---
  mpc::Engine base_eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto t_rebuild = Clock::now();
  (void)service::SensitivityIndex::build(base_eng, inst);
  const double rebuild_wall = seconds_since(t_rebuild);
  const double rebuild_per_s = 1.0 / rebuild_wall;

  std::cout << "instance: n=" << inst.n() << " m=" << inst.m() << "; "
            << backend->num_shards() << " shard"
            << (backend->num_shards() == 1 ? "" : "s")
            << "; distributed build " << format_double(build_wall)
            << "s; full-rebuild baseline " << format_double(rebuild_wall)
            << "s/update\n\n";

  graph::Instance sim = inst;
  std::vector<std::int64_t> live(sim.nontree.size());
  for (std::size_t i = 0; i < live.size(); ++i)
    live[i] = static_cast<std::int64_t>(i);
  const auto max_n = static_cast<graph::Vertex>(inst.n() + inst.n() / 8);
  const std::size_t count = std::max<std::size_t>(n / 8, 256);
  constexpr std::size_t kChunk = 512;

  // --- stream A: batched ingest (group commit) ---
  StreamStats ingest_stats;
  const auto stream_a =
      make_stream(sim, live, count, 61, max_n, ingest_stats);
  const auto t_ingest = Clock::now();
  for (std::size_t i = 0; i < stream_a.size(); i += kChunk) {
    const std::vector<service::EdgeEvent> chunk(
        stream_a.begin() + static_cast<std::ptrdiff_t>(i),
        stream_a.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + kChunk, stream_a.size())));
    (void)backend->ingest(chunk);
  }
  const double ingest_wall = seconds_since(t_ingest);
  const double ingest_per_s = stream_a.size() / std::max(ingest_wall, 1e-9);
  require_parity(*backend, sim, "post-ingest");

  // --- stream B: the same mix through the per-event entry points ---
  StreamStats apply_stats;
  const auto stream_b = make_stream(sim, live, count, 67, max_n, apply_stats);
  const auto t_apply = Clock::now();
  for (const auto& ev : stream_b) {
    switch (ev.op) {
      case service::UpdateOp::kReweight:
        (void)backend->apply_update(ev.u, ev.v, ev.w);
        break;
      case service::UpdateOp::kAddEdge:
        (void)backend->add_edge(ev.u, ev.v, ev.w);
        break;
      case service::UpdateOp::kRemoveEdge:
        (void)backend->remove_edge(ev.u, ev.v);
        break;
    }
  }
  const double apply_wall = seconds_since(t_apply);
  const double apply_per_s = stream_b.size() / std::max(apply_wall, 1e-9);
  require_parity(*backend, sim, "post-apply");

  Table table({"path", "events", "events/s", "inserts", "attaches", "deletes",
               "reweights", "swaps", "speedup vs rebuild"});
  table.row("ingest (batched)", stream_a.size(), ingest_per_s,
            ingest_stats.inserts + ingest_stats.insert_swaps,
            ingest_stats.attaches, ingest_stats.deletes,
            ingest_stats.reweights, ingest_stats.swaps,
            format_double(ingest_per_s / rebuild_per_s, 0) + "x");
  table.row("per-event", stream_b.size(), apply_per_s,
            apply_stats.inserts + apply_stats.insert_swaps,
            apply_stats.attaches, apply_stats.deletes, apply_stats.reweights,
            apply_stats.swaps,
            format_double(apply_per_s / rebuild_per_s, 0) + "x");
  table.print(std::cout, "topology churn throughput");
  std::cout << "group-commit gain: "
            << format_double(ingest_per_s / std::max(apply_per_s, 1e-9), 2)
            << "x (one fsync per " << kChunk << "-event chunk vs per event)\n";

  std::ofstream out(out_path);
  JsonWriter j(out);
  j.begin_object();
  j.key("bench").value("topology_churn");
  j.key("n").value(inst.n());
  j.key("m").value(inst.m());
  j.key("shards").value(backend->num_shards());
  j.key("build_wall_s").value(build_wall);
  j.key("rebuild_wall_s_per_update").value(rebuild_wall);
  j.key("events_per_stream").value(count);
  j.key("ingest_events_per_s").value(ingest_per_s);
  j.key("apply_events_per_s").value(apply_per_s);
  j.key("ingest_speedup_vs_rebuild").value(ingest_per_s / rebuild_per_s);
  j.key("apply_speedup_vs_rebuild").value(apply_per_s / rebuild_per_s);
  j.key("group_commit_gain").value(ingest_per_s /
                                   std::max(apply_per_s, 1e-9));
  j.key("final_generation").value(backend->generation());
  const auto stats_json = [&j](const char* key, const StreamStats& s) {
    j.key(key).begin_object();
    j.key("inserts").value(s.inserts);
    j.key("insert_swaps").value(s.insert_swaps);
    j.key("attaches").value(s.attaches);
    j.key("deletes").value(s.deletes);
    j.key("reweights").value(s.reweights);
    j.key("swaps").value(s.swaps);
    j.end_object();
  };
  stats_json("ingest_classes", ingest_stats);
  stats_json("apply_classes", apply_stats);
  j.end_object();
  std::cout << "wrote " << out_path << "\n";
  std::filesystem::remove_all(state_dir);
  return 0;
}
