// E6 (Theorem 2.15): all-edges LCA in O(log D_T) rounds and linear memory,
// validated against the sequential LCA on every sweep point.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "lca/all_edges_lca.hpp"
#include "treeops/interval_label.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;
namespace to = mpcmst::treeops;
namespace seq = mpcmst::seq;

namespace {

constexpr std::size_t kN = 1 << 15;

void run_table() {
  mpcmst::Table table({"tree", "height", "rounds", "rounds/log2(Dhat)",
                       "contraction-steps", "peak-mem/input", "mismatches"});
  std::vector<double> xs, ys;
  for (auto& pt : bu::diameter_sweep(kN)) {
    const auto inst = g::make_layered_instance(pt.tree, 2 * kN, 17);
    auto eng = bu::scaled_engine(inst);
    const auto dtree = to::load_tree(eng, inst.tree);
    const auto depths = to::compute_depths(dtree, inst.tree.root);
    const auto labels =
        to::dfs_interval_labels(dtree, inst.tree.root, depths);
    std::vector<mpcmst::lca::IdEdge> recs;
    for (std::size_t i = 0; i < inst.nontree.size(); ++i)
      recs.push_back({inst.nontree[i].u, inst.nontree[i].v, inst.nontree[i].w,
                      static_cast<std::int64_t>(i)});
    auto dedges = mpcmst::mpc::scatter(eng, std::move(recs));
    eng.reset_meters();
    const std::int64_t dhat = 2 * std::max<std::int64_t>(pt.height, 1);
    const auto res = mpcmst::lca::all_edges_lca(
        dtree, inst.tree.root, depths, labels.intervals, dedges, dhat);
    // Validate against the sequential oracle.
    const seq::SeqTreeIndex idx(inst.tree);
    std::size_t mismatches = 0;
    for (const auto& e : res.edges.local())
      mismatches += e.lca != idx.lca(e.u, e.v);
    const double logd = bu::log2d(dhat);
    xs.push_back(logd);
    ys.push_back(static_cast<double>(eng.rounds()));
    table.row(pt.name, pt.height, eng.rounds(),
              static_cast<double>(eng.rounds()) / logd,
              res.contraction_steps,
              static_cast<double>(eng.stats().peak_global_words) /
                  static_cast<double>(inst.input_words()),
              mismatches);
  }
  table.print(std::cout,
              "E6  Theorem 2.15: all-edges LCA rounds vs diameter "
              "(n = 32768, m = 3n; rounds exclude label preprocessing)");
  std::cout << "linear fit: rounds ~ " << mpcmst::format_double(bu::slope(xs, ys))
            << " * log2(Dhat) + c\n\n";
}

void BM_AllEdgesLca(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = g::make_layered_instance(g::path_tree(n), 2 * n, 17);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst);
    const auto dtree = to::load_tree(eng, inst.tree);
    const auto depths = to::compute_depths(dtree, inst.tree.root);
    const auto labels = to::dfs_interval_labels(dtree, inst.tree.root, depths);
    std::vector<mpcmst::lca::IdEdge> recs;
    for (std::size_t i = 0; i < inst.nontree.size(); ++i)
      recs.push_back({inst.nontree[i].u, inst.nontree[i].v, inst.nontree[i].w,
                      static_cast<std::int64_t>(i)});
    auto dedges = mpcmst::mpc::scatter(eng, std::move(recs));
    benchmark::DoNotOptimize(
        mpcmst::lca::all_edges_lca(dtree, inst.tree.root, depths,
                                   labels.intervals, dedges,
                                   2 * static_cast<std::int64_t>(n))
            .contraction_steps);
  }
}
BENCHMARK(BM_AllEdgesLca)->Arg(1 << 13)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
