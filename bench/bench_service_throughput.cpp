// Service throughput: queries/sec against batch size, thread count and shard
// count, the cache's effect (cold vs warm pass), the batch fast path against
// the per-query loop (the answer_batch contention axis), and the
// amortization argument — how many queries one distributed precomputation is
// worth versus re-running mst_sensitivity_mpc per question (the batch-only
// workflow this subsystem replaces).  Emits the table to stdout and
// BENCH_service.json for the experiment harness; CI runs it at shards 1 and
// 4 and gates on the cached-throughput ratio.
//
// Measurement discipline: every timed region wraps exactly one
// answer_batch / answer loop; all emission (table rows, JSON) happens after
// the measurements so no serialization cost leaks into a recorded number.
//
// --metrics additionally dumps the full telemetry registry (JSON) next to
// the bench JSON (<out>.metrics.json).  Every run ends with an in-binary
// instrumentation A/B: the same warm batch timed with telemetry recording on
// vs off (metrics_set_enabled), reported in the output and the JSON — the
// runtime-flag complement of CI's two-build overhead gate.
//
//   $ ./bench_service_throughput [n] [out.json] [shards] [--metrics]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <random>
#include <vector>

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "sensitivity/sensitivity.hpp"
#include "service/service.hpp"

using namespace mpcmst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<service::Query> make_workload(const graph::Instance& inst,
                                          std::size_t count,
                                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> tree_pick(1, inst.n() - 1);
  std::uniform_int_distribution<std::size_t> nontree_pick(
      0, inst.nontree.size() - 1);
  std::uniform_int_distribution<graph::Weight> delta(-50, 50);
  std::vector<service::Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    graph::Vertex c = static_cast<graph::Vertex>(tree_pick(rng));
    if (c == inst.tree.root) c = (c + 1) % inst.n();
    switch (i % 4) {
      case 0:
        out.push_back(service::Query::price_change(c, inst.tree.parent[c],
                                                   delta(rng)));
        break;
      case 1: {
        const graph::WEdge& e = inst.nontree[nontree_pick(rng)];
        out.push_back(service::Query::price_change(e.u, e.v, delta(rng)));
        break;
      }
      case 2:
        out.push_back(
            service::Query::replacement_edge(inst.tree.parent[c], c));
        break;
      default:
        out.push_back(
            service::Query::corridor_headroom(c, inst.tree.parent[c]));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_metrics = false;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics")
      dump_metrics = true;
    else
      pos.push_back(argv[i]);
  }
  const std::size_t n = pos.size() > 0 ? std::stoul(pos[0]) : 20000;
  const std::string out_path =
      pos.size() > 1 ? pos[1] : "BENCH_service.json";
  const std::size_t shards = pos.size() > 2 ? std::stoul(pos[2]) : 1;

  auto tree = graph::random_recursive_tree(n, 2024);
  const auto inst =
      graph::make_layered_instance(std::move(tree), 3 * n, 2025);

  // --- the one-time distributed build ---
  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto t_build = Clock::now();
  auto index = service::SensitivityIndex::build(eng, inst);
  const double build_wall = seconds_since(t_build);

  // --- backend under test: monolithic, or split into vertex-range shards
  // and served through the QueryRouter ---
  std::shared_ptr<const service::IndexBackend> backend;
  double split_wall = 0.0;
  std::size_t max_shard_words = 0;
  if (shards > 1) {
    const auto t_split = Clock::now();
    auto sharded = service::ShardedSensitivityIndex::split(*index, shards);
    split_wall = seconds_since(t_split);
    max_shard_words = sharded->max_shard_words();
    backend = std::make_shared<const service::QueryRouter>(std::move(sharded));
  } else {
    backend = std::make_shared<const service::MonolithicBackend>(index);
  }

  // --- baseline: the batch-only workflow pays one distributed run per
  // question (what whatif_pricing.cpp used to hand-roll) ---
  mpc::Engine base_eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto t_base = Clock::now();
  (void)sensitivity::mst_sensitivity_mpc(base_eng, inst);
  const double rerun_wall = seconds_since(t_base);
  const double rerun_qps = 1.0 / rerun_wall;

  std::cout << "instance: n=" << inst.n() << " m=" << inst.m()
            << "; index build: " << format_double(build_wall) << "s, "
            << index->receipt().build_rounds << " MPC rounds, peak "
            << index->receipt().peak_global_words << " words\n"
            << "backend: " << shards << " shard" << (shards == 1 ? "" : "s");
  if (shards > 1)
    std::cout << " (split in " << format_double(split_wall) << "s, max "
              << max_shard_words << " words/shard)";
  std::cout << "\nbaseline full-run-per-query: "
            << format_double(rerun_wall, 3) << "s/query\n\n";

  Table table({"threads", "batch", "cold q/s", "warm q/s", "warm loop q/s",
               "hit rate", "speedup vs rerun"});
  struct Point {
    std::size_t threads, batch;
    double cold_qps, warm_qps, warm_loop_qps, hit_rate, speedup;
    std::uint64_t evictions;  // this point's cache (each point gets its own)
  };
  std::vector<Point> points;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t batch :
         {std::size_t{1024}, std::size_t{16384}, std::size_t{131072}}) {
      const auto workload = make_workload(inst, batch, 7 * threads + batch);
      service::QueryService svc(backend, {.threads = threads,
                                          .cache_capacity = std::size_t{1}
                                                            << 18});
      const auto t_cold = Clock::now();
      auto cold = svc.answer_batch(workload);
      const double cold_s = seconds_since(t_cold);
      const auto before_warm = svc.stats().cache;
      const auto t_warm = Clock::now();
      auto warm = svc.answer_batch(workload);
      const double warm_s = seconds_since(t_warm);
      const auto after_warm = svc.stats().cache;
      // The per-query loop on the same warmed cache: what the batch fast
      // path's one-lock-per-shard discipline is measured against.
      std::vector<service::Answer> loop_answers(workload.size());
      const auto t_loop = Clock::now();
      for (std::size_t i = 0; i < workload.size(); ++i)
        loop_answers[i] = svc.answer(workload[i]);
      const double loop_s = seconds_since(t_loop);
      if (cold != warm || cold != loop_answers) {
        std::cerr << "FATAL: warm/loop pass disagrees with cold pass\n";
        return 1;
      }
      const double cold_qps = static_cast<double>(batch) / cold_s;
      const double warm_qps = static_cast<double>(batch) / warm_s;
      const double warm_loop_qps = static_cast<double>(batch) / loop_s;
      // Hit rate of the warm pass alone (the cold pass dilutes it to ~0.5).
      const double warm_lookups = static_cast<double>(
          (after_warm.hits - before_warm.hits) +
          (after_warm.misses - before_warm.misses));
      const double hit_rate =
          warm_lookups == 0
              ? 0.0
              : static_cast<double>(after_warm.hits - before_warm.hits) /
                    warm_lookups;
      const double speedup = warm_qps / rerun_qps;
      points.push_back({threads, batch, cold_qps, warm_qps, warm_loop_qps,
                        hit_rate, speedup, svc.stats().cache.evictions});
      table.row(threads, batch, cold_qps, warm_qps, warm_loop_qps, hit_rate,
                format_double(speedup, 0) + "x");
    }
  }
  table.print(std::cout, "service throughput (index reused across configs)");

  const Point& best = *std::max_element(
      points.begin(), points.end(),
      [](const Point& a, const Point& b) { return a.warm_qps < b.warm_qps; });
  std::cout << "\nbest cached throughput: "
            << format_double(best.warm_qps, 0) << " q/s ("
            << best.threads << " threads, batch " << best.batch << ") — "
            << format_double(best.speedup, 0)
            << "x the rerun-per-query baseline\n";

  // --- instrumentation A/B: the same warm batch with telemetry recording
  // on vs off.  Best of several reps each, so the ratio reflects the
  // steady-state hit path, not a scheduler hiccup.
  const auto ab_workload = make_workload(inst, 16384, 1234);
  service::QueryService ab_svc(
      backend, {.threads = 4, .cache_capacity = std::size_t{1} << 18});
  ab_svc.answer_batch(ab_workload);  // warm the cache
  auto best_warm_pass = [&](bool enabled) {
    metrics_set_enabled(enabled);
    double best_s = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = Clock::now();
      (void)ab_svc.answer_batch(ab_workload);
      best_s = std::min(best_s, seconds_since(t0));
    }
    return static_cast<double>(ab_workload.size()) / best_s;
  };
  const double ab_off_qps = best_warm_pass(false);
  const double ab_on_qps = best_warm_pass(true);  // leaves telemetry on
  const double ab_ratio = ab_on_qps / ab_off_qps;
  if (kMetricsCompiledOut)
    std::cout << "telemetry overhead A/B: compiled out (MPCMST_NO_METRICS)\n";
  else
    std::cout << "telemetry overhead A/B (warm batch 16384, 4 threads): "
              << format_double(ab_on_qps, 0) << " q/s instrumented vs "
              << format_double(ab_off_qps, 0) << " q/s disabled — ratio "
              << format_double(ab_ratio, 3) << "\n";

  std::ofstream out(out_path);
  JsonWriter j(out);
  j.begin_object();
  j.key("bench").value("service_throughput");
  j.key("n").value(inst.n());
  j.key("m").value(inst.m());
  j.key("shards").value(shards);
  if (shards > 1) {
    j.key("split_wall_s").value(split_wall);
    j.key("max_shard_words").value(max_shard_words);
  }
  j.key("build").begin_object();
  j.key("wall_s").value(build_wall);
  j.key("mpc_rounds").value(index->receipt().build_rounds);
  j.key("peak_global_words").value(index->receipt().peak_global_words);
  j.key("input_words").value(index->receipt().input_words);
  j.end_object();
  j.key("baseline_rerun_s_per_query").value(rerun_wall);
  j.key("points").begin_array();
  for (const Point& p : points) {
    j.begin_object();
    j.key("threads").value(p.threads);
    j.key("batch").value(p.batch);
    j.key("cold_qps").value(p.cold_qps);
    j.key("warm_qps").value(p.warm_qps);
    j.key("warm_loop_qps").value(p.warm_loop_qps);
    j.key("cache_hit_rate").value(p.hit_rate);
    j.key("cache_evictions").value(p.evictions);
    j.key("speedup_vs_rerun").value(p.speedup);
    j.end_object();
  }
  j.end_array();
  j.key("best_warm_qps").value(best.warm_qps);
  j.key("best_speedup_vs_rerun").value(best.speedup);
  j.key("metrics_compiled_out").value(kMetricsCompiledOut);
  j.key("metrics_ab").begin_object();
  j.key("instrumented_qps").value(ab_on_qps);
  j.key("disabled_qps").value(ab_off_qps);
  j.key("ratio").value(ab_ratio);
  j.end_object();
  j.end_object();
  std::cout << "wrote " << out_path << "\n";

  if (dump_metrics) {
    std::string mpath = out_path;
    const auto dot = mpath.rfind(".json");
    mpath = (dot == std::string::npos ? mpath : mpath.substr(0, dot)) +
            ".metrics.json";
    std::ofstream mout(mpath);
    MetricsRegistry::instance().render_json(mout);
    std::cout << "wrote " << mpath << " (telemetry registry)\n";
  }
  return 0;
}
