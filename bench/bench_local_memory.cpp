// E10 (model): full scalability in the local memory s = O(n^delta).
// Smaller delta means smaller machines, more of them, and deeper O(1/delta)
// aggregation trees — rounds grow as delta shrinks while the verdict and
// the linear global memory stay intact.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "verify/verifier.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;

namespace {

void run_table() {
  const std::size_t n = 1 << 14;
  const auto inst = g::make_layered_instance(
      g::random_tree_depth_bounded(n, 64, 37), 2 * n, 41);
  mpcmst::Table table({"delta", "machines", "s (words)", "collective depth",
                       "rounds", "peak-mem/input"});
  for (double delta : {0.3, 0.4, 0.5, 0.6, 0.7, 0.9}) {
    auto cfg = mpcmst::mpc::MpcConfig::scaled(inst.input_words(), delta, 64.0);
    mpcmst::mpc::Engine eng(cfg);
    const auto res = mpcmst::verify::verify_mst_mpc(eng, inst);
    if (!res.is_mst) std::cerr << "unexpected verdict\n";
    table.row(delta, cfg.machines, cfg.local_capacity,
              eng.collective_depth(),
              eng.rounds(),
              static_cast<double>(eng.stats().peak_global_words) /
                  static_cast<double>(inst.input_words()));
  }
  table.print(std::cout,
              "E10  local-memory scalability: verification under "
              "s ~ input^delta (n = 16384, depth <= 64)");
  std::cout << "rounds scale with the O(1/delta) collective depth; memory "
               "stays linear.\n\n";
}

void BM_VerifySmallDelta(benchmark::State& state) {
  const std::size_t n = 1 << 13;
  const auto inst = g::make_layered_instance(
      g::random_tree_depth_bounded(n, 64, 37), 2 * n, 41);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst, 0.35);
    benchmark::DoNotOptimize(mpcmst::verify::verify_mst_mpc(eng, inst).is_mst);
  }
}
BENCHMARK(BM_VerifySmallDelta)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
