// E9 (Theorems 3.1/4.1): rounds depend on D_T, not on n.  Fixing the depth
// bound and growing n by 64x leaves round counts essentially flat (tiny
// drift comes from the 1/delta collective depth as machine counts grow).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "sensitivity/sensitivity.hpp"
#include "verify/verifier.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;

namespace {

void run_table() {
  mpcmst::Table table({"n", "height", "verify rounds", "sensitivity rounds",
                       "verify peak/input"});
  for (std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    auto tree = g::random_tree_depth_bounded(n, 32, 29);
    const auto inst = g::make_layered_instance(std::move(tree), 2 * n, 31);
    const auto height = mpcmst::seq::SeqTreeIndex(inst.tree).height();
    auto eng_v = bu::scaled_engine(inst);
    (void)mpcmst::verify::verify_mst_mpc(eng_v, inst);
    auto eng_s = bu::scaled_engine(inst);
    (void)mpcmst::sensitivity::mst_sensitivity_mpc(eng_s, inst);
    table.row(n, height, eng_v.rounds(), eng_s.rounds(),
              static_cast<double>(eng_v.stats().peak_global_words) /
                  static_cast<double>(inst.input_words()));
  }
  table.print(std::cout,
              "E9  fixed depth bound (32), growing n: rounds stay flat "
              "(D_T-dependence only)");
  std::cout << "\n";
}

void BM_VerifyFixedDepth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = g::make_layered_instance(
      g::random_tree_depth_bounded(n, 32, 29), 2 * n, 31);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst);
    benchmark::DoNotOptimize(mpcmst::verify::verify_mst_mpc(eng, inst).is_mst);
  }
}
BENCHMARK(BM_VerifyFixedDepth)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
