// E3 (Theorem 5.2 / Appendix A): the 1-vs-2-cycle apex family.  The input
// graph G* has diameter 2, but every candidate tree has diameter Θ(n), so
// verification rounds must grow as Θ(log n) — matching the conditional
// lower bound.  Also checks all four candidate verdicts at one size.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "bound/one_two_cycle.hpp"
#include "verify/verifier.hpp"

namespace b = mpcmst::bound;
namespace bu = mpcmst::benchutil;
namespace vf = mpcmst::verify;

namespace {

void run_tables() {
  {
    mpcmst::Table table({"n", "log2(n)", "rounds", "rounds/log2(n)",
                         "peak-mem/input", "verdict"});
    std::vector<double> xs, ys;
    for (std::size_t n : {256u, 1024u, 4096u, 16384u, 65536u}) {
      const auto lb = b::make_apex_instance(n, b::Candidate::HamPathPlusApex);
      auto eng = bu::scaled_engine(lb.instance);
      const auto res = vf::verify_mst_mpc(eng, lb.instance);
      const double logn = bu::log2d(static_cast<std::int64_t>(n));
      xs.push_back(logn);
      ys.push_back(static_cast<double>(eng.rounds()));
      table.row(n, logn, eng.rounds(),
                static_cast<double>(eng.rounds()) / logn,
                static_cast<double>(eng.stats().peak_global_words) /
                    static_cast<double>(lb.instance.input_words()),
                res.is_mst ? "MST" : "not-MST");
    }
    table.print(std::cout,
                "E3a  Theorem 5.2 family: verification rounds on apex "
                "instances (D_G = 2, D_T = Theta(n))");
    std::cout << "linear fit: rounds ~ "
              << mpcmst::format_double(bu::slope(xs, ys))
              << " * log2(n) + c   [Omega(log D_T) is unavoidable here]\n\n";
  }
  {
    mpcmst::Table table(
        {"candidate", "valid-tree", "expected", "validated", "verdict"});
    const std::size_t n = 4096;
    for (auto [name, cand] :
         {std::pair<const char*, b::Candidate>{"ham-path+apex",
                                               b::Candidate::HamPathPlusApex},
          {"two-paths+2apex", b::Candidate::TwoPathsPlusTwoApex},
          {"heavy-apex", b::Candidate::HeavyApex},
          {"cycle+path", b::Candidate::CyclePlusPath}}) {
      const auto lb = b::make_apex_instance(n, cand);
      auto eng = bu::scaled_engine(lb.instance);
      const auto res = vf::verify_mst_mpc(eng, lb.instance,
                                          vf::VerifyOptions{true});
      table.row(name, lb.tree_is_valid ? "yes" : "no",
                lb.expected_mst ? "MST" : "not-MST",
                res.input_is_tree ? "tree" : "rejected",
                res.is_mst ? "MST" : "not-MST");
    }
    table.print(std::cout,
                "E3b  verdicts across the 1-vs-2-cycle candidates (n = 4096)");
    std::cout << "\n";
  }
}

void BM_LowerBoundVerify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lb = b::make_apex_instance(n, b::Candidate::HamPathPlusApex);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(lb.instance);
    auto res = vf::verify_mst_mpc(eng, lb.instance);
    benchmark::DoNotOptimize(res.is_mst);
    state.counters["rounds"] = static_cast<double>(eng.rounds());
  }
}
BENCHMARK(BM_LowerBoundVerify)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
