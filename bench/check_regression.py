#!/usr/bin/env python3
"""Gate bench results against the committed baselines and merge the suite.

Usage:
    check_regression.py --baseline-dir bench/baselines \
        --out BENCH_suite.json BENCH_build.json BENCH_service.json ...
    check_regression.py --list

Each input JSON is compared against the file of the same name under the
baseline directory.  Metrics and directions are chosen by the "bench" field:

    build               build_wall_s, host_build_wall_s   (lower is better)
    service_throughput  best_warm_qps                     (higher is better)

A result worse than FAIL_RATIO x baseline fails the job; worse than
WARN_RATIO x baseline prints a warning.  The thresholds are generous because
the baselines are committed from a developer host and CI runners differ —
the gate exists to catch order-of-magnitude regressions (a comparator sort
sneaking back into a hot path), not single-digit drift.  All inputs are
merged into one suite JSON for the artifact upload.

Unknown bench types and missing metric keys are HARD failures: a renamed or
dropped key must fail the gate loudly, not silently skip the comparison (a
gate that exits 0 because the metric vanished is worse than no gate).
`--list` prints the gated metrics so CI logs show exactly what is enforced.
"""

import argparse
import json
import os
import sys

FAIL_RATIO = 0.5
WARN_RATIO = 0.9

# bench-type -> [(metric, higher_is_better)]
METRICS = {
    "build": [("build_wall_s", False), ("host_build_wall_s", False)],
    "service_throughput": [("best_warm_qps", True)],
}


def list_metrics():
    print(f"gate: fail < {FAIL_RATIO}x baseline, warn < {WARN_RATIO}x")
    for bench, metrics in sorted(METRICS.items()):
        for metric, higher_better in metrics:
            direction = "higher is better" if higher_better else "lower is better"
            print(f"  {bench}: {metric} ({direction})")


def compare(name, current, baseline):
    """Returns (failures, warnings) for one bench JSON pair."""
    failures, warnings = [], []
    bench = current.get("bench")
    if bench not in METRICS:
        failures.append(
            f"{name}: unknown bench type {bench!r} — not gated by any metric "
            f"(known: {', '.join(sorted(METRICS))})")
        return failures, warnings
    for metric, higher_better in METRICS[bench]:
        # A key missing from either side is a hard failure: the gate must
        # never pass because the metric it gates on disappeared.
        missing = [side for side, data in (("measured", current),
                                           ("baseline", baseline))
                   if metric not in data]
        if missing:
            failures.append(
                f"{name}: metric '{metric}' missing from "
                f"{' and '.join(missing)} JSON")
            continue
        cur, base = float(current[metric]), float(baseline[metric])
        bad = [(side, v) for side, v in (("baseline", base), ("measured", cur))
               if v <= 0]
        if bad:
            failures.extend(
                f"{name}: {side} {metric} = {v:g} is not a positive number "
                f"— the ratio gate cannot run" for side, v in bad)
            continue
        # Normalize so ratio > 1 always means "better than baseline".
        ratio = (cur / base) if higher_better else (base / cur)
        line = (f"{name}: {metric} = {cur:g} vs baseline {base:g} "
                f"(ratio {ratio:.2f})")
        if ratio < FAIL_RATIO:
            failures.append(line)
        elif ratio < WARN_RATIO:
            warnings.append(line)
        else:
            print(f"OK   {line}")
    return failures, warnings


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-dir")
    ap.add_argument("--out", default="BENCH_suite.json")
    ap.add_argument("--list", action="store_true",
                    help="print the gated bench types/metrics and exit")
    ap.add_argument("inputs", nargs="*")
    args = ap.parse_args()

    if args.list:
        list_metrics()
        return
    if not args.baseline_dir or not args.inputs:
        ap.error("--baseline-dir and at least one input are required "
                 "(or use --list)")

    suite, failures, warnings = {}, [], []
    for path in args.inputs:
        name = os.path.basename(path)
        with open(path) as f:
            current = json.load(f)
        suite[name] = current
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            # A brand-new bench legitimately lands before its baseline; the
            # warning keeps it visible until the baseline is committed.
            warnings.append(f"{name}: no committed baseline at {base_path}")
            continue
        with open(base_path) as f:
            baseline = json.load(f)
        f_list, w_list = compare(name, current, baseline)
        failures += f_list
        warnings += w_list

    with open(args.out, "w") as f:
        json.dump(suite, f, indent=2)
    print(f"wrote {args.out} ({len(suite)} benches)")

    for line in warnings:
        print(f"WARN {line}")
    if failures:
        for line in failures:
            print(f"FAIL {line}")
        sys.exit(1)
    print("regression gate passed")


if __name__ == "__main__":
    main()
