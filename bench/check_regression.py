#!/usr/bin/env python3
"""Gate bench results against the committed baselines and merge the suite.

Usage:
    check_regression.py --baseline-dir bench/baselines \
        --out BENCH_suite.json BENCH_build.json BENCH_service.json ...

Each input JSON is compared against the file of the same name under the
baseline directory.  Metrics and directions are chosen by the "bench" field:

    build               build_wall_s, host_build_wall_s   (lower is better)
    service_throughput  best_warm_qps                     (higher is better)

A result worse than FAIL_RATIO x baseline fails the job; worse than
WARN_RATIO x baseline prints a warning.  The thresholds are generous because
the baselines are committed from a developer host and CI runners differ —
the gate exists to catch order-of-magnitude regressions (a comparator sort
sneaking back into a hot path), not single-digit drift.  All inputs are
merged into one suite JSON for the artifact upload.
"""

import argparse
import json
import os
import sys

FAIL_RATIO = 0.5
WARN_RATIO = 0.9

# bench-type -> [(metric, higher_is_better)]
METRICS = {
    "build": [("build_wall_s", False), ("host_build_wall_s", False)],
    "service_throughput": [("best_warm_qps", True)],
}


def compare(name, current, baseline):
    """Returns (failures, warnings) for one bench JSON pair."""
    failures, warnings = [], []
    for metric, higher_better in METRICS.get(current.get("bench"), []):
        if metric not in current or metric not in baseline:
            continue
        cur, base = float(current[metric]), float(baseline[metric])
        if base <= 0:
            continue
        # Normalize so ratio > 1 always means "better than baseline".
        ratio = (cur / base) if higher_better else (base / cur)
        line = (f"{name}: {metric} = {cur:g} vs baseline {base:g} "
                f"(ratio {ratio:.2f})")
        if ratio < FAIL_RATIO:
            failures.append(line)
        elif ratio < WARN_RATIO:
            warnings.append(line)
        else:
            print(f"OK   {line}")
    return failures, warnings


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-dir", required=True)
    ap.add_argument("--out", default="BENCH_suite.json")
    ap.add_argument("inputs", nargs="+")
    args = ap.parse_args()

    suite, failures, warnings = {}, [], []
    for path in args.inputs:
        name = os.path.basename(path)
        with open(path) as f:
            current = json.load(f)
        suite[name] = current
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            warnings.append(f"{name}: no committed baseline at {base_path}")
            continue
        with open(base_path) as f:
            baseline = json.load(f)
        f_list, w_list = compare(name, current, baseline)
        failures += f_list
        warnings += w_list

    with open(args.out, "w") as f:
        json.dump(suite, f, indent=2)
    print(f"wrote {args.out} ({len(suite)} benches)")

    for line in warnings:
        print(f"WARN {line}")
    if failures:
        for line in failures:
            print(f"FAIL {line}")
        sys.exit(1)
    print("regression gate passed")


if __name__ == "__main__":
    main()
