#!/usr/bin/env python3
"""Gate bench results against the committed baselines and merge the suite.

Usage:
    check_regression.py --baseline-dir bench/baselines \
        --out BENCH_suite.json BENCH_build.json BENCH_service.json ...
    check_regression.py --metrics-overhead instrumented.json bare.json
    check_regression.py --list

Each input JSON is compared against the file of the same name under the
baseline directory.  Metrics and directions are chosen by the "bench" field:

    build               build_wall_s, host_build_wall_s   (lower is better)
    service_throughput  best_warm_qps                     (higher is better)

A result worse than FAIL_RATIO x baseline fails the job; worse than
WARN_RATIO x baseline prints a warning.  The thresholds are generous because
the baselines are committed from a developer host and CI runners differ —
the gate exists to catch order-of-magnitude regressions (a comparator sort
sneaking back into a hot path), not single-digit drift.  All inputs are
merged into one suite JSON for the artifact upload.

Unknown bench types and missing metric keys are HARD failures: a renamed or
dropped key must fail the gate loudly, not silently skip the comparison (a
gate that exits 0 because the metric vanished is worse than no gate).
`--list` prints the gated metrics so CI logs show exactly what is enforced.

Two classes of metric exist.  Ratio metrics (above) tolerate runner drift.
EXACT metrics do not: the charged MPC cost model (mpc_rounds,
peak_global_words) is deterministic — ANY difference from the committed
baseline means the simulated algorithm changed, and the gate hard-fails on
a one-word drift.  The superlevel fusion work rides on exactly this
invariant: physical passes may collapse freely, charged rounds/words may
not move at all.

The build bench additionally carries a fusion-speedup floor: the baseline
records `prefusion_build_wall_s`, the monolith build wall committed before
the superlevel fusion landed, and the gate asserts the measured fused
build is at least FUSION_SPEEDUP_FLOOR x faster than it.  A missing
`prefusion_build_wall_s` in the baseline is a hard failure for the same
reason missing keys are above.

`--metrics-overhead` is a separate two-build gate for the telemetry layer:
it takes two service_throughput JSONs — one from the default (instrumented)
build and one from a -DMPCMST_NO_METRICS build of the same source — and
hard-fails when the instrumented warm throughput drops below
METRICS_OVERHEAD_RATIO x the uninstrumented build.  Unlike the baseline
gate this compares two runs from the SAME runner in the SAME job, so the
threshold is tight: telemetry on the warm hit path must stay in the noise.
"""

import argparse
import json
import os
import sys

FAIL_RATIO = 0.5
WARN_RATIO = 0.9
METRICS_OVERHEAD_RATIO = 0.97

# bench-type -> [(metric, higher_is_better)]
METRICS = {
    "build": [("build_wall_s", False), ("host_build_wall_s", False)],
    "service_throughput": [("best_warm_qps", True)],
    # Batched scenario verification must keep beating apply-then-rebuild at
    # its worst k (<= 64); a drop toward 1x means the certifier degraded into
    # recomputation.
    "still_mst": [("min_speedup_vs_rebuild", True)],
    # Topology churn (add_edge/remove_edge/ingest) absorbed by the live
    # tier; a collapse here means an insert/delete path regressed to a
    # rebuild-shaped cost.
    "topology_churn": [("ingest_events_per_s", True)],
}

# bench-type -> metrics that must match the baseline EXACTLY.  These are
# outputs of the deterministic cost-model simulation, not wall-clock: any
# drift, in either direction, is a semantic change to the charged
# algorithm and hard-fails.
EXACT_METRICS = {
    "build": ["mpc_rounds", "peak_global_words"],
}

# Fused build wall must beat the committed pre-fusion wall by at least
# this factor (measured * floor <= prefusion).  Kept below the ~2x
# same-host win so runner variance has headroom, but high enough that a
# de-fused level loop sneaking back in cannot pass.
FUSION_SPEEDUP_FLOOR = 1.8


def list_metrics():
    print(f"gate: fail < {FAIL_RATIO}x baseline, warn < {WARN_RATIO}x")
    for bench, metrics in sorted(METRICS.items()):
        for metric, higher_better in metrics:
            direction = "higher is better" if higher_better else "lower is better"
            print(f"  {bench}: {metric} ({direction})")
    for bench, metrics in sorted(EXACT_METRICS.items()):
        for metric in metrics:
            print(f"  {bench}: {metric} (exact match — any drift fails)")
    print(f"  build: build_wall_s * {FUSION_SPEEDUP_FLOOR} <= "
          f"prefusion_build_wall_s (fusion speedup floor)")
    print(f"  --metrics-overhead: instrumented best_warm_qps >= "
          f"{METRICS_OVERHEAD_RATIO}x MPCMST_NO_METRICS build")


def compare(name, current, baseline):
    """Returns (failures, warnings) for one bench JSON pair."""
    failures, warnings = [], []
    bench = current.get("bench")
    if bench not in METRICS:
        failures.append(
            f"{name}: unknown bench type {bench!r} — not gated by any metric "
            f"(known: {', '.join(sorted(METRICS))})")
        return failures, warnings
    for metric, higher_better in METRICS[bench]:
        # A key missing from either side is a hard failure: the gate must
        # never pass because the metric it gates on disappeared.
        missing = [side for side, data in (("measured", current),
                                           ("baseline", baseline))
                   if metric not in data]
        if missing:
            failures.append(
                f"{name}: metric '{metric}' missing from "
                f"{' and '.join(missing)} JSON")
            continue
        cur, base = float(current[metric]), float(baseline[metric])
        bad = [(side, v) for side, v in (("baseline", base), ("measured", cur))
               if v <= 0]
        if bad:
            failures.extend(
                f"{name}: {side} {metric} = {v:g} is not a positive number "
                f"— the ratio gate cannot run" for side, v in bad)
            continue
        # Normalize so ratio > 1 always means "better than baseline".
        ratio = (cur / base) if higher_better else (base / cur)
        line = (f"{name}: {metric} = {cur:g} vs baseline {base:g} "
                f"(ratio {ratio:.2f})")
        if ratio < FAIL_RATIO:
            failures.append(line)
        elif ratio < WARN_RATIO:
            warnings.append(line)
        else:
            print(f"OK   {line}")
    for metric in EXACT_METRICS.get(bench, []):
        missing = [side for side, data in (("measured", current),
                                           ("baseline", baseline))
                   if metric not in data]
        if missing:
            failures.append(
                f"{name}: exact metric '{metric}' missing from "
                f"{' and '.join(missing)} JSON")
            continue
        cur, base = int(current[metric]), int(baseline[metric])
        if cur != base:
            failures.append(
                f"{name}: {metric} = {cur} != baseline {base} — the charged "
                f"cost model drifted (exact-match metric, no tolerance)")
        else:
            print(f"OK   {name}: {metric} = {cur} (exact match)")
    if bench == "build":
        if "prefusion_build_wall_s" not in baseline:
            failures.append(
                f"{name}: baseline has no prefusion_build_wall_s — the "
                f"fusion speedup floor cannot run")
        elif "build_wall_s" in current:
            cur = float(current["build_wall_s"])
            pre = float(baseline["prefusion_build_wall_s"])
            speedup = pre / cur if cur > 0 else 0.0
            line = (f"{name}: build_wall_s = {cur:g} vs pre-fusion "
                    f"{pre:g} (speedup {speedup:.2f}x, floor "
                    f"{FUSION_SPEEDUP_FLOOR}x)")
            if speedup < FUSION_SPEEDUP_FLOOR:
                failures.append(line)
            else:
                print(f"OK   {line}")
    return failures, warnings


def metrics_overhead(instrumented_path, bare_path):
    """Two-build telemetry gate: instrumented warm q/s vs NO_METRICS build."""
    sides = {}
    for label, path in (("instrumented", instrumented_path),
                        ("bare", bare_path)):
        with open(path) as f:
            data = json.load(f)
        if data.get("bench") != "service_throughput":
            sys.exit(f"FAIL {path}: expected a service_throughput JSON, "
                     f"got bench={data.get('bench')!r}")
        if "best_warm_qps" not in data:
            sys.exit(f"FAIL {path}: no best_warm_qps — cannot gate")
        sides[label] = data
    if sides["instrumented"].get("metrics_compiled_out") is True:
        sys.exit(f"FAIL {instrumented_path}: metrics_compiled_out is true — "
                 "this is not the instrumented build")
    if sides["bare"].get("metrics_compiled_out") is False:
        sys.exit(f"FAIL {bare_path}: metrics_compiled_out is false — "
                 "this is not the MPCMST_NO_METRICS build")
    inst = float(sides["instrumented"]["best_warm_qps"])
    bare = float(sides["bare"]["best_warm_qps"])
    if inst <= 0 or bare <= 0:
        sys.exit(f"FAIL metrics-overhead: non-positive throughput "
                 f"(instrumented {inst:g}, bare {bare:g})")
    ratio = inst / bare
    line = (f"metrics-overhead: instrumented {inst:g} q/s vs bare {bare:g} "
            f"q/s (ratio {ratio:.3f}, floor {METRICS_OVERHEAD_RATIO})")
    if ratio < METRICS_OVERHEAD_RATIO:
        sys.exit(f"FAIL {line}")
    print(f"OK   {line}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-dir")
    ap.add_argument("--out", default="BENCH_suite.json")
    ap.add_argument("--list", action="store_true",
                    help="print the gated bench types/metrics and exit")
    ap.add_argument("--metrics-overhead", nargs=2,
                    metavar=("INSTRUMENTED", "BARE"),
                    help="gate instrumented warm q/s against a "
                         "MPCMST_NO_METRICS build's JSON and exit")
    ap.add_argument("inputs", nargs="*")
    args = ap.parse_args()

    if args.list:
        list_metrics()
        return
    if args.metrics_overhead:
        metrics_overhead(*args.metrics_overhead)
        return
    if not args.baseline_dir or not args.inputs:
        ap.error("--baseline-dir and at least one input are required "
                 "(or use --list)")

    suite, failures, warnings = {}, [], []
    for path in args.inputs:
        name = os.path.basename(path)
        with open(path) as f:
            current = json.load(f)
        suite[name] = current
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            # A brand-new bench legitimately lands before its baseline; the
            # warning keeps it visible until the baseline is committed.
            warnings.append(f"{name}: no committed baseline at {base_path}")
            continue
        with open(base_path) as f:
            baseline = json.load(f)
        f_list, w_list = compare(name, current, baseline)
        failures += f_list
        warnings += w_list

    with open(args.out, "w") as f:
        json.dump(suite, f, indent=2)
    print(f"wrote {args.out} ({len(suite)} benches)")

    for line in warnings:
        print(f"WARN {line}")
    if failures:
        for line in failures:
            print(f"FAIL {line}")
        sys.exit(1)
    print("regression gate passed")


if __name__ == "__main__":
    main()
