// E2 (Theorem 4.1): MST sensitivity runs in O(log D_T) rounds with linear
// global memory.  Same sweep as E1; also reports the note machinery volume.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "sensitivity/sensitivity.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;
namespace sn = mpcmst::sensitivity;

namespace {

constexpr std::size_t kN = 1 << 15;

void run_table() {
  mpcmst::Table table({"tree", "height", "log2(Dhat)", "rounds",
                       "rounds/log2(Dhat)", "steps", "notes-created",
                       "notes-peak/n", "peak-mem/input"});
  std::vector<double> xs, ys;
  for (auto& pt : bu::diameter_sweep(kN)) {
    const auto inst = g::make_layered_instance(pt.tree, 2 * kN, 7);
    auto eng = bu::scaled_engine(inst);
    const auto res = sn::mst_sensitivity_mpc(eng, inst);
    const double logd = bu::log2d(2 * std::max<std::int64_t>(pt.height, 1));
    const double rounds = static_cast<double>(eng.rounds());
    xs.push_back(logd);
    ys.push_back(rounds);
    table.row(pt.name, pt.height, logd, eng.rounds(), rounds / logd,
              res.stats.contraction_steps, res.stats.notes_created,
              static_cast<double>(res.stats.notes_peak) /
                  static_cast<double>(inst.n()),
              static_cast<double>(eng.stats().peak_global_words) /
                  static_cast<double>(inst.input_words()));
  }
  table.print(std::cout,
              "E2  Theorem 4.1: sensitivity rounds vs tree diameter "
              "(n = 32768, m = 3n)");
  std::cout << "linear fit: rounds ~ " << mpcmst::format_double(bu::slope(xs, ys))
            << " * log2(Dhat) + c   [O(log D_T) shape]\n\n";
}

void BM_SensitivityPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = g::make_layered_instance(g::path_tree(n), 2 * n, 7);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst);
    auto res = sn::mst_sensitivity_mpc(eng, inst);
    benchmark::DoNotOptimize(res.stats.contraction_steps);
    state.counters["rounds"] = static_cast<double>(eng.rounds());
  }
}
BENCHMARK(BM_SensitivityPath)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
