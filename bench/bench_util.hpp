// Shared helpers for the experiment harness (E1-E10, DESIGN.md §4).
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/instance.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "seq/oracles.hpp"

namespace mpcmst::benchutil {

struct SweepPoint {
  std::string name;
  graph::RootedTree tree;
  std::int64_t height;  // measured, for the log D_T axis
};

/// Fixed-n trees spanning the diameter spectrum, shallow to deep.
inline std::vector<SweepPoint> diameter_sweep(std::size_t n,
                                              std::uint64_t seed = 11) {
  std::vector<SweepPoint> out;
  auto add = [&](std::string name, graph::RootedTree t) {
    const auto h = seq::SeqTreeIndex(t).height();
    out.push_back({std::move(name), std::move(t), h});
  };
  add("star", graph::star_tree(n));
  add("kary8", graph::kary_tree(n, 8));
  add("binary", graph::kary_tree(n, 2));
  add("spine64", graph::caterpillar_tree(n, 64, seed));
  add("spine512", graph::caterpillar_tree(n, 512, seed + 1));
  add("spine4096", graph::caterpillar_tree(n, 4096, seed + 2));
  add("path", graph::path_tree(n));
  return out;
}

/// Honest low-space engine: s ~ input^delta, global budget a fixed multiple
/// of the input (0 disables the budget for baselines that need more).
inline mpc::Engine scaled_engine(const graph::Instance& inst,
                                 double delta = 0.5, double budget = 64.0) {
  return mpc::Engine(
      mpc::MpcConfig::scaled(inst.input_words(), delta, budget));
}

inline double log2d(std::int64_t x) {
  return std::log2(static_cast<double>(x < 2 ? 2 : x));
}

/// Least-squares slope of y against x (rounds vs log2 D fits).
inline double slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  const std::size_t k = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < k; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = static_cast<double>(k) * sxx - sx * sx;
  return denom == 0 ? 0 : (static_cast<double>(k) * sxy - sx * sy) / denom;
}

}  // namespace mpcmst::benchutil
