// still_mst scenario verification vs the naive alternative: for a batch of k
// simultaneous price changes, answer "is T still an MST, and which edges
// certify the violation?" from the standing index (one covers() overlay pass
// over the cached labels) and compare against apply-then-rebuild — copy the
// instance, write the k weights, rebuild the host index, scan its violation
// roster.  This is the paper's verification-vs-recomputation gap measured on
// the serving tier: the batch certifier does O(k) path probes per cached
// label, the rebuild pays the full O(m alpha) label construction again.  CI
// gates on the k<=64 speedup staying above 1x (verification must beat
// recomputation) via check_regression.py.
//
// Measurement discipline: every timed region wraps exactly one certification
// pass or one rebuild; answers are cross-checked for equality after timing so
// the bench is also an end-to-end parity assertion.
//
//   $ ./bench_still_mst [n] [out.json] [shards]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <random>
#include <vector>

#include "common/table.hpp"
#include "graph/generators.hpp"
#include "service/router.hpp"
#include "service/service.hpp"

using namespace mpcmst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<service::PriceChange> make_batch(const graph::Instance& inst,
                                             std::mt19937_64& rng,
                                             std::size_t k) {
  std::vector<service::PriceChange> batch;
  batch.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    service::PriceChange c;
    if (rng() % 2 == 0) {
      graph::Vertex child;
      do {
        child = static_cast<graph::Vertex>(rng() % inst.n());
      } while (child == inst.tree.root);
      c.u = child;
      c.v = inst.tree.parent[static_cast<std::size_t>(child)];
      c.new_w = inst.tree.weight[static_cast<std::size_t>(child)] +
                static_cast<graph::Weight>(rng() % 31) - 15;
    } else {
      const graph::WEdge& e = inst.nontree[rng() % inst.nontree.size()];
      c.u = e.u;
      c.v = e.v;
      c.new_w = e.w + static_cast<graph::Weight>(rng() % 31) - 15;
    }
    batch.push_back(c);
  }
  return batch;
}

/// The naive oracle: apply the batch to a scratch copy, rebuild the host
/// index, read the violation roster.  Returns the certificate count (the
/// timed work is everything up to and including the roster scan).
std::size_t apply_then_rebuild(const graph::Instance& base,
                               const service::SensitivityIndex& pre,
                               const std::vector<service::PriceChange>& batch,
                               std::vector<std::int64_t>& cert_ids) {
  graph::Instance scratch = base;
  for (const service::PriceChange& c : batch) {
    const auto ref = pre.find(c.u, c.v);
    if (!ref) continue;  // bench batches only touch known edges
    if (ref->is_tree)
      scratch.tree.weight[static_cast<std::size_t>(ref->id)] = c.new_w;
    else
      scratch.nontree[static_cast<std::size_t>(ref->id)].w = c.new_w;
  }
  const auto rebuilt = service::SensitivityIndex::build_host(scratch);
  const service::NonTreeLabels& nt = rebuilt->nontree_labels();
  cert_ids.clear();
  for (std::size_t i = 0; i < nt.size(); ++i)
    if (nt.w[i] < nt.maxpath[i])
      cert_ids.push_back(static_cast<std::int64_t>(i));
  return cert_ids.size();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 20000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_still_mst.json";
  const std::size_t shards = argc > 3 ? std::stoul(argv[3]) : 1;

  auto tree = graph::random_recursive_tree(n, 3101);
  graph::assign_random_tree_weights(tree, 1, 1000, 3102);
  const auto inst = graph::make_mst_instance(std::move(tree), 3 * n, 3103,
                                             /*slack=*/16);

  const auto t_build = Clock::now();
  const auto index = service::SensitivityIndex::build_host(inst);
  const double build_wall = seconds_since(t_build);

  std::shared_ptr<const service::IndexBackend> backend;
  if (shards > 1)
    backend = std::make_shared<const service::QueryRouter>(
        service::ShardedSensitivityIndex::split(*index, shards));
  else
    backend = std::make_shared<const service::MonolithicBackend>(index);

  std::cout << "instance: n=" << inst.n() << " m=" << inst.m()
            << "; host index build: " << format_double(build_wall, 3)
            << "s; backend: " << shards << " shard" << (shards == 1 ? "" : "s")
            << "\n\n";

  constexpr int kReps = 12;
  Table table({"k", "still_mst ms", "rebuild ms", "speedup", "violations"});
  struct Point {
    std::size_t k;
    double verify_ms, rebuild_ms, speedup;
    std::size_t violations;
  };
  std::vector<Point> points;
  std::mt19937_64 rng(3104);

  for (const std::size_t k :
       {std::size_t{1}, std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    std::vector<std::vector<service::PriceChange>> batches;
    std::vector<service::Query> queries;
    for (int r = 0; r < kReps; ++r) {
      batches.push_back(make_batch(inst, rng, k));
      queries.push_back(service::Query::still_mst(batches.back()));
    }

    // Timed region 1: the batch certifier, one pass per scenario.
    std::vector<service::Answer> answers(queries.size());
    const auto t_verify = Clock::now();
    for (std::size_t r = 0; r < queries.size(); ++r)
      answers[r] = backend->answer(queries[r]);
    const double verify_s = seconds_since(t_verify) / kReps;

    // Timed region 2: apply-then-rebuild for the same scenarios.
    std::vector<std::vector<std::int64_t>> oracle_ids(queries.size());
    const auto t_rebuild = Clock::now();
    for (std::size_t r = 0; r < batches.size(); ++r)
      (void)apply_then_rebuild(inst, *index, batches[r], oracle_ids[r]);
    const double rebuild_s = seconds_since(t_rebuild) / kReps;

    // Parity assertion (outside the timed regions): same certificate sets.
    std::size_t violations = 0;
    for (std::size_t r = 0; r < answers.size(); ++r) {
      if (answers[r].status != service::Status::kOk ||
          answers[r].certificates.size() != oracle_ids[r].size()) {
        std::cerr << "FATAL: still_mst diverged from apply-then-rebuild at k="
                  << k << " rep=" << r << "\n";
        return 1;
      }
      for (std::size_t i = 0; i < oracle_ids[r].size(); ++i)
        if (answers[r].certificates[i].orig_id != oracle_ids[r][i]) {
          std::cerr << "FATAL: certificate mismatch at k=" << k << "\n";
          return 1;
        }
      violations += answers[r].certificates.size();
    }

    const double speedup = rebuild_s / verify_s;
    points.push_back(
        {k, verify_s * 1e3, rebuild_s * 1e3, speedup, violations});
    table.row(k, verify_s * 1e3, rebuild_s * 1e3,
              format_double(speedup, 1) + "x", violations);
  }
  table.print(std::cout,
              "still_mst vs apply-then-rebuild (mean of " +
                  std::to_string(kReps) + " scenarios per k)");

  const Point& worst = *std::min_element(
      points.begin(), points.end(),
      [](const Point& a, const Point& b) { return a.speedup < b.speedup; });
  std::cout << "\nworst-case speedup: " << format_double(worst.speedup, 1)
            << "x at k=" << worst.k
            << " (verification must beat recomputation for every k<=64)\n";

  std::ofstream out(out_path);
  JsonWriter j(out);
  j.begin_object();
  j.key("bench").value("still_mst");
  j.key("n").value(inst.n());
  j.key("m").value(inst.m());
  j.key("shards").value(shards);
  j.key("host_build_wall_s").value(build_wall);
  j.key("reps_per_k").value(static_cast<std::size_t>(kReps));
  j.key("points").begin_array();
  for (const Point& p : points) {
    j.begin_object();
    j.key("k").value(p.k);
    j.key("verify_ms").value(p.verify_ms);
    j.key("rebuild_ms").value(p.rebuild_ms);
    j.key("speedup_vs_rebuild").value(p.speedup);
    j.key("violations").value(p.violations);
    j.end_object();
  }
  j.end_array();
  j.key("min_speedup_vs_rebuild").value(worst.speedup);
  j.end_object();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
