// E1 (Theorem 3.1): MST verification runs in O(log D_T) rounds with linear
// global memory.  Fixed n, diameter sweep; reports rounds, rounds/log2(D̂),
// contraction steps, and peak-memory/input ratio.  The rounds/log2(D̂)
// column flattening to a constant is the theorem's shape.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "verify/verifier.hpp"

namespace bu = mpcmst::benchutil;
namespace g = mpcmst::graph;
namespace vf = mpcmst::verify;

namespace {

constexpr std::size_t kN = 1 << 15;

void run_table() {
  mpcmst::Table table({"tree", "height", "log2(Dhat)", "rounds",
                       "rounds/log2(Dhat)", "contraction-steps",
                       "peak-mem/input", "verdict"});
  std::vector<double> xs, ys;
  for (auto& pt : bu::diameter_sweep(kN)) {
    const auto inst = g::make_layered_instance(pt.tree, 2 * kN, 5);
    auto eng = bu::scaled_engine(inst);
    const auto res = vf::verify_mst_mpc(eng, inst);
    const double logd = bu::log2d(2 * std::max<std::int64_t>(pt.height, 1));
    const double rounds = static_cast<double>(eng.rounds());
    xs.push_back(logd);
    ys.push_back(rounds);
    table.row(pt.name, pt.height, logd, eng.rounds(), rounds / logd,
              res.core.contraction_steps,
              static_cast<double>(eng.stats().peak_global_words) /
                  static_cast<double>(inst.input_words()),
              res.is_mst ? "MST" : "not-MST");
  }
  table.print(std::cout,
              "E1  Theorem 3.1: verification rounds vs tree diameter "
              "(n = 32768, m = 3n)");
  std::cout << "linear fit: rounds ~ " << mpcmst::format_double(bu::slope(xs, ys))
            << " * log2(Dhat) + c   [O(log D_T) shape]\n\n";
}

void BM_VerifyPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = g::make_layered_instance(g::path_tree(n), 2 * n, 5);
  for (auto _ : state) {
    auto eng = bu::scaled_engine(inst);
    auto res = vf::verify_mst_mpc(eng, inst);
    benchmark::DoNotOptimize(res.is_mst);
    state.counters["rounds"] = static_cast<double>(eng.rounds());
  }
}
BENCHMARK(BM_VerifyPath)->Arg(1 << 12)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
