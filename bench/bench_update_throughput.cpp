// Incremental update throughput: confirmed price changes absorbed per
// second by the live backends (service/update.hpp), split by update class,
// against the only alternative a snapshot service has — re-running the full
// distributed build per confirmed change.  Emits the table to stdout and
// BENCH_update.json for the experiment harness; CI runs it at a small n and
// gates on the speedup-vs-rebuild ratios.
//
// --metrics additionally dumps the full telemetry registry (JSON) next to
// the bench JSON (<out>.metrics.json).  Every run ends with an in-binary
// instrumentation A/B: the same reweight workload timed with telemetry
// recording on vs off (metrics_set_enabled), reported in the output and the
// JSON.
//
//   $ ./bench_update_throughput [n] [out.json] [shards] [--metrics]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "service/update.hpp"

using namespace mpcmst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct WorkloadResult {
  std::string name;
  std::size_t updates = 0;
  double wall_s = 0;
  double updates_per_s = 0;
  std::size_t reweights = 0;
  std::size_t swaps = 0;
};

/// Drive `count` updates of the requested flavor through the backend.  The
/// generator probes corridor_headroom first, so every produced change lands
/// in the intended class (mode 0: within headroom / stays out; mode 1:
/// forced exchanges; mode 2: churn mix).
WorkloadResult run_workload(service::UpdatableBackend& backend,
                            const std::string& name, int mode,
                            std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  WorkloadResult out;
  out.name = name;
  const auto snapshot = backend.instance_snapshot();
  const std::size_t n = snapshot.n();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    graph::Vertex u, v;
    graph::Weight new_w;
    if (mode == 1) {
      // Evict the currently most fragile tree edge: raising it one past its
      // headroom is a guaranteed exchange, and the probe is O(1).
      const auto top = backend.answer(service::Query::top_k_fragile(1));
      if (top.fragile.empty() || top.fragile[0].sens >= graph::kPosInfW)
        break;
      u = top.fragile[0].child;
      v = top.fragile[0].parent;
      new_w = top.fragile[0].w + top.fragile[0].sens + 1 +
              static_cast<graph::Weight>(rng() % 7);
    } else {
      // Reweights never move edges, so the pre-workload snapshot stays a
      // valid edge list for mode 0; the churn mix tolerates the rare pick
      // that an intervening swap re-resolved.
      if (rng() % 2 == 0) {
        do {
          u = static_cast<graph::Vertex>(rng() % n);
        } while (u == snapshot.tree.root);
        v = snapshot.tree.parent[static_cast<std::size_t>(u)];
      } else {
        const graph::WEdge& e =
            snapshot.nontree[rng() % snapshot.nontree.size()];
        u = e.u;
        v = e.v;
      }
      const auto probe =
          backend.answer(service::Query::corridor_headroom(u, v));
      if (probe.status != service::Status::kOk) continue;
      const graph::Weight pivot = probe.swap_cost;
      const bool pivot_real =
          pivot > graph::kNegInfW && pivot < graph::kPosInfW;
      if (mode == 0 && pivot_real) {
        // Stay on the cheap path: tree edges up to the headroom edge
        // (inclusive: ties), non-tree edges at or above their path maximum.
        new_w = probe.edge.is_tree
                    ? pivot - static_cast<graph::Weight>(rng() % 9)
                    : pivot + static_cast<graph::Weight>(rng() % 9);
      } else if (pivot_real) {
        new_w = pivot + static_cast<graph::Weight>(rng() % 15) - 7;
      } else {
        new_w = 1 + static_cast<graph::Weight>(rng() % 1000000);
      }
    }
    const auto receipt = backend.apply_update(u, v, new_w);
    if (receipt.report.status != service::Status::kOk ||
        receipt.report.cls == service::UpdateClass::kNoChange)
      continue;
    ++out.updates;
    if (receipt.full_relabel)
      ++out.swaps;
    else
      ++out.reweights;
  }
  out.wall_s = seconds_since(t0);
  out.updates_per_s = out.updates / (out.wall_s > 0 ? out.wall_s : 1e-9);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_metrics = false;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics")
      dump_metrics = true;
    else
      pos.push_back(argv[i]);
  }
  const std::size_t n = pos.size() > 0 ? std::stoul(pos[0]) : 20000;
  const std::string out_path = pos.size() > 1 ? pos[1] : "BENCH_update.json";
  const std::size_t shards = pos.size() > 2 ? std::stoul(pos[2]) : 1;

  auto tree = graph::random_recursive_tree(n, 2026);
  const auto inst = graph::make_layered_instance(std::move(tree), 3 * n, 2027);

  // --- the one-time distributed build, behind the live layer ---
  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto t_build = Clock::now();
  std::shared_ptr<service::UpdatableBackend> backend;
  if (shards > 1)
    backend = service::LiveShardedBackend::build(eng, inst, shards);
  else
    backend = service::LiveMonolithBackend::build(eng, inst);
  const double build_wall = seconds_since(t_build);

  // --- baseline: what a snapshot service pays per confirmed change ---
  mpc::Engine base_eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto t_rebuild = Clock::now();
  (void)service::SensitivityIndex::build(base_eng, inst);
  const double rebuild_wall = seconds_since(t_rebuild);
  const double rebuild_per_s = 1.0 / rebuild_wall;

  const std::size_t built_shards = backend->num_shards();
  std::cout << "instance: n=" << inst.n() << " m=" << inst.m() << "; "
            << built_shards << " shard" << (built_shards == 1 ? "" : "s")
            << "; distributed build " << format_double(build_wall)
            << "s; full-rebuild baseline " << format_double(rebuild_wall)
            << "s/update\n\n";

  std::vector<WorkloadResult> results;
  results.push_back(
      run_workload(*backend, "reweight", 0, std::max<std::size_t>(n / 8, 64),
                   41));
  results.push_back(run_workload(*backend, "swap_heavy", 1,
                                 std::max<std::size_t>(n / 200, 16), 43));
  results.push_back(
      run_workload(*backend, "mixed_churn", 2,
                   std::max<std::size_t>(n / 16, 32), 47));

  Table table({"workload", "updates", "updates/s", "reweights", "swaps",
               "speedup vs rebuild"});
  for (const WorkloadResult& r : results)
    table.row(r.name, r.updates, r.updates_per_s, r.reweights, r.swaps,
              format_double(r.updates_per_s / rebuild_per_s, 0) + "x");
  table.print(std::cout, "incremental update throughput");

  // --- instrumentation A/B: the same reweight workload with telemetry
  // recording on vs off (best of 3 reps each).
  auto best_reweight_pass = [&](bool enabled, std::uint64_t seed) {
    metrics_set_enabled(enabled);
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto r = run_workload(*backend, "ab", 0,
                                  std::max<std::size_t>(n / 32, 32),
                                  seed + static_cast<std::uint64_t>(rep));
      best = std::max(best, r.updates_per_s);
    }
    return best;
  };
  const double ab_off_ups = best_reweight_pass(false, 101);
  const double ab_on_ups = best_reweight_pass(true, 201);  // leaves it on
  const double ab_ratio = ab_off_ups > 0 ? ab_on_ups / ab_off_ups : 1.0;
  if (kMetricsCompiledOut)
    std::cout << "\ntelemetry overhead A/B: compiled out "
                 "(MPCMST_NO_METRICS)\n";
  else
    std::cout << "\ntelemetry overhead A/B (reweights): "
              << format_double(ab_on_ups, 0) << " u/s instrumented vs "
              << format_double(ab_off_ups, 0) << " u/s disabled — ratio "
              << format_double(ab_ratio, 3) << "\n";

  std::ofstream out(out_path);
  JsonWriter j(out);
  j.begin_object();
  j.key("bench").value("update_throughput");
  j.key("n").value(inst.n());
  j.key("m").value(inst.m());
  j.key("shards").value(backend->num_shards());
  j.key("build_wall_s").value(build_wall);
  j.key("rebuild_wall_s_per_update").value(rebuild_wall);
  j.key("final_generation").value(backend->generation());
  j.key("workloads").begin_array();
  for (const WorkloadResult& r : results) {
    j.begin_object();
    j.key("name").value(r.name);
    j.key("updates").value(r.updates);
    j.key("wall_s").value(r.wall_s);
    j.key("updates_per_s").value(r.updates_per_s);
    j.key("reweights").value(r.reweights);
    j.key("swaps").value(r.swaps);
    j.key("speedup_vs_rebuild").value(r.updates_per_s / rebuild_per_s);
    j.end_object();
  }
  j.end_array();
  j.key("metrics_compiled_out").value(kMetricsCompiledOut);
  j.key("metrics_ab").begin_object();
  j.key("instrumented_updates_per_s").value(ab_on_ups);
  j.key("disabled_updates_per_s").value(ab_off_ups);
  j.key("ratio").value(ab_ratio);
  j.end_object();
  j.end_object();
  std::cout << "wrote " << out_path << "\n";

  if (dump_metrics) {
    std::string mpath = out_path;
    const auto dot = mpath.rfind(".json");
    mpath = (dot == std::string::npos ? mpath : mpath.substr(0, dot)) +
            ".metrics.json";
    std::ofstream mout(mpath);
    MetricsRegistry::instance().render_json(mout);
    std::cout << "wrote " << mpath << " (telemetry registry)\n";
  }
  return 0;
}
