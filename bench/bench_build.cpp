// Index build wall-clock: the precompute half of the service, measured
// end-to-end on one instance family — the number the radix/SoA/parallel
// build work is gated on.
//
// Four builds are timed (all on the same instance):
//   - distributed monolith   (SensitivityIndex::build: MPC pipeline + snapshot)
//   - distributed sharded    (ShardedSensitivityIndex::build, `shards` ways)
//   - host relabel           (SensitivityIndex::build_host: the swap-repair
//                             primitive of the update path)
//   - split                  (monolith -> shards migration)
// All emission (table + JSON) happens strictly after the timed section, so
// the recorded walls are pure build time.
//
//   $ ./bench_build [n] [out.json] [shards]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "mpc/engine.hpp"
#include "service/service.hpp"

using namespace mpcmst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 20000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_build.json";
  const std::size_t shards = argc > 3 ? std::stoul(argv[3]) : 8;

  auto tree = graph::random_recursive_tree(n, 2024);
  const auto inst = graph::make_layered_instance(std::move(tree), 3 * n, 2025);

  // --- distributed monolith ---
  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const MetricsSnapshot phases_before = MetricsRegistry::instance().snapshot();
  const auto t_mono = Clock::now();
  const auto index = service::SensitivityIndex::build(eng, inst);
  const double mono_wall = seconds_since(t_mono);
  const MetricsSnapshot phases_after = MetricsRegistry::instance().snapshot();

  // --- distributed sharded (own engine: same model price, fresh meters) ---
  mpc::Engine seng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto t_shard = Clock::now();
  const auto sharded =
      service::ShardedSensitivityIndex::build(seng, inst, shards);
  const double shard_wall = seconds_since(t_shard);

  // --- host relabel (the update path's swap-repair primitive) ---
  const auto t_host = Clock::now();
  const auto host = service::SensitivityIndex::build_host(inst);
  const double host_wall = seconds_since(t_host);

  // --- monolith -> shards migration ---
  const auto t_split = Clock::now();
  const auto split = service::ShardedSensitivityIndex::split(*index, shards);
  const double split_wall = seconds_since(t_split);

  // --- emission (outside every timed region) ---
  if (index->fingerprint() != host->fingerprint() ||
      sharded->fingerprint() != split->fingerprint()) {
    std::cerr << "FATAL: builds disagree on the instance fingerprint\n";
    return 1;
  }
  std::cout << "instance: n=" << inst.n() << " m=" << inst.m() << "\n";
  Table table({"build", "wall s", "mpc rounds", "peak words"});
  table.row("distributed monolith", mono_wall, index->receipt().build_rounds,
            index->receipt().peak_global_words);
  table.row("distributed sharded", shard_wall,
            sharded->receipt().build_rounds,
            sharded->receipt().peak_global_words);
  table.row("host relabel", host_wall, std::size_t{0}, std::size_t{0});
  table.row("split to shards", split_wall, std::size_t{0}, std::size_t{0});
  table.print(std::cout, "index build wall-clock");

  // Per-phase attribution of the monolith build (delta over the run, in
  // case the process recorded earlier builds): phase wall seconds next to
  // the charged rounds, so a fused-pass change shows up where it landed.
  const std::string kPhaseMetric = "mpcmst_build_phase_seconds";
  Table ptable({"phase", "wall s"});
  std::vector<std::pair<std::string, double>> phase_rows;
  for (const auto& [key, hist] : phases_after.histograms) {
    if (key.rfind(kPhaseMetric + "{", 0) != 0) continue;
    const std::uint64_t before = phases_before.histogram_or(key).sum;
    const double secs = static_cast<double>(hist.sum - before) * 1e-9;
    const std::size_t lo = key.find('"') + 1;
    const std::string phase = key.substr(lo, key.rfind('"') - lo);
    phase_rows.emplace_back(phase, secs);
    ptable.row(phase, secs);
  }
  if (!phase_rows.empty()) ptable.print(std::cout, "monolith build phases");

  std::ofstream out(out_path);
  JsonWriter j(out);
  j.begin_object();
  j.key("bench").value("build");
  j.key("n").value(inst.n());
  j.key("m").value(inst.m());
  j.key("shards").value(shards);
  j.key("build_wall_s").value(mono_wall);
  j.key("sharded_build_wall_s").value(shard_wall);
  j.key("host_build_wall_s").value(host_wall);
  j.key("split_wall_s").value(split_wall);
  j.key("mpc_rounds").value(index->receipt().build_rounds);
  j.key("peak_global_words").value(index->receipt().peak_global_words);
  j.key("input_words").value(index->receipt().input_words);
  // Honest physical sweep count of the monolith build (Stats::physical_passes)
  // next to the charged rounds: the rounds/passes ratio is the superlevel
  // fusion win, and regressions in either direction are visible here.
  j.key("physical_passes").value(eng.stats().physical_passes);
  j.key("build_phase_seconds");
  j.begin_object();
  for (const auto& [phase_name, secs] : phase_rows)
    j.key(phase_name).value(secs);
  j.end_object();
  j.end_object();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
